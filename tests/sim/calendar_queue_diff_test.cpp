// Differential property suite: CalendarQueue vs a reference binary heap.
//
// The reference reimplements the historical EventQueue (std::priority_queue
// ordered by (time, insertion-seq), shared_ptr<bool> cancellation flags,
// lazy skip of cancelled tops). Both structures are driven with identical
// seeded randomized workloads — schedules under several time distributions
// (including same-timestamp bursts), cancels, cancel-then-pop, pops and
// peeks — and must agree on every observable: pop sequence, timestamps,
// next_time, size and pending_schedule. Timestamps are compared exactly
// (==, not near): the queues store the scheduled doubles verbatim, so any
// difference is an ordering bug, not rounding.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <queue>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/calendar_queue.hpp"

namespace dftmsn {
namespace {

// ---------------------------------------------------------------------------
// Reference model: the pre-calendar binary-heap EventQueue, tags instead of
// callbacks.

class ReferenceHeap {
 public:
  using Handle = std::shared_ptr<bool>;  // *handle == true -> cancelled

  Handle schedule(SimTime at, int tag) {
    auto cancelled = std::make_shared<bool>(false);
    heap_.push(Item{at, next_seq_++, tag, cancelled});
    ++live_;
    return cancelled;
  }

  void cancel(const Handle& h) {
    if (h && !*h) {
      *h = true;
      --live_;
    }
  }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  [[nodiscard]] SimTime next_time() {
    skip_cancelled();
    return heap_.empty() ? kTimeNever : heap_.top().at;
  }

  struct Popped {
    SimTime at;
    int tag;
  };
  Popped pop() {
    skip_cancelled();
    Item top = heap_.top();
    heap_.pop();
    --live_;
    *top.cancelled = true;  // retire: cancel-after-fire must be a no-op
    return Popped{top.at, top.tag};
  }

  [[nodiscard]] std::vector<std::pair<SimTime, EventSeq>> pending_schedule()
      const {
    std::vector<std::pair<SimTime, EventSeq>> out;
    auto copy = heap_;  // priority_queue has no iteration; drain a copy
    while (!copy.empty()) {
      if (!*copy.top().cancelled) out.emplace_back(copy.top().at, copy.top().seq);
      copy.pop();
    }
    return out;  // drained in heap order == ascending (at, seq)
  }

 private:
  struct Item {
    SimTime at;
    EventSeq seq;
    int tag;
    Handle cancelled;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void skip_cancelled() {
    while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
  }

  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  EventSeq next_seq_ = 0;
  std::size_t live_ = 0;
};

// ---------------------------------------------------------------------------
// Workload driver.

// How schedule timestamps are drawn; each shape stresses a different part
// of the calendar layout (bucket spread, same-bucket chains, width resize).
enum class TimeShape {
  kUniform,     // uniform over [0, 1000) — past-of-cursor inserts included
  kBursty,      // ~half reuse the previous timestamp exactly
  kAdvancing,   // near the last pop, like a real simulation clock
  kWideRange,   // mix of [0,1) and [0,1e9) — extreme width estimates
  kFewDistinct  // only 4 distinct timestamps — giant same-time chains
};

class Driver {
 public:
  Driver(std::uint64_t seed, TimeShape shape) : rng_(seed), shape_(shape) {}

  void run(int ops) {
    for (int i = 0; i < ops; ++i) {
      const double roll = uniform01();
      if (roll < 0.45) {
        do_schedule();
      } else if (roll < 0.60) {
        do_cancel();
        if (uniform01() < 0.5) do_pop();  // cancel-then-pop, back to back
      } else if (roll < 0.90) {
        do_pop();
      } else {
        do_peek();
      }
      ASSERT_EQ(q_.size(), ref_.size());
      ASSERT_EQ(q_.empty(), ref_.empty());
    }
    check_pending_schedule();
    drain();
  }

 private:
  double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng_);
  }

  SimTime draw_time() {
    switch (shape_) {
      case TimeShape::kUniform:
        return uniform01() * 1000.0;
      case TimeShape::kBursty:
        if (last_time_ >= 0.0 && uniform01() < 0.5) return last_time_;
        return uniform01() * 1000.0;
      case TimeShape::kAdvancing:
        return last_pop_ + uniform01() * 10.0;
      case TimeShape::kWideRange:
        return uniform01() < 0.5 ? uniform01() : uniform01() * 1e9;
      case TimeShape::kFewDistinct: {
        static const double kTimes[4] = {1.0, 2.5, 2.5000000001, 7.0};
        return kTimes[rng_() % 4];
      }
    }
    return 0.0;
  }

  void do_schedule() {
    const SimTime at = draw_time();
    last_time_ = at;
    const int tag = next_tag_++;
    EventHandle h = q_.schedule(at, [this, tag] { fired_.push_back(tag); });
    ReferenceHeap::Handle rh = ref_.schedule(at, tag);
    handles_.emplace_back(std::move(h), std::move(rh));
  }

  void do_cancel() {
    if (handles_.empty()) return;
    const std::size_t i = rng_() % handles_.size();
    handles_[i].first.cancel();
    ref_.cancel(handles_[i].second);
    handles_.erase(handles_.begin() + static_cast<std::ptrdiff_t>(i));
  }

  void do_pop() {
    ASSERT_EQ(q_.empty(), ref_.empty());
    if (q_.empty()) return;
    CalendarQueue::Popped p = q_.pop();
    p.cb();
    const ReferenceHeap::Popped r = ref_.pop();
    ASSERT_EQ(p.at, r.at);
    ASSERT_FALSE(fired_.empty());
    ASSERT_EQ(fired_.back(), r.tag);
    last_pop_ = p.at;
  }

  void do_peek() {
    ASSERT_EQ(q_.next_time(), ref_.next_time());
  }

  void check_pending_schedule() {
    ASSERT_EQ(q_.pending_schedule(), ref_.pending_schedule());
  }

  void drain() {
    while (!ref_.empty()) do_pop();
    ASSERT_TRUE(q_.empty());
    ASSERT_EQ(q_.next_time(), kTimeNever);
  }

  std::mt19937_64 rng_;
  TimeShape shape_;
  CalendarQueue q_;
  ReferenceHeap ref_;
  std::vector<std::pair<EventHandle, ReferenceHeap::Handle>> handles_;
  std::vector<int> fired_;
  int next_tag_ = 0;
  SimTime last_time_ = -1.0;
  SimTime last_pop_ = 0.0;
};

class CalendarQueueDiff
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, TimeShape>> {};

TEST_P(CalendarQueueDiff, MatchesReferenceHeap) {
  const auto [seed, shape] = GetParam();
  Driver d(seed, shape);
  d.run(4000);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, CalendarQueueDiff,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 42u, 1234567u),
                       ::testing::Values(TimeShape::kUniform,
                                         TimeShape::kBursty,
                                         TimeShape::kAdvancing,
                                         TimeShape::kWideRange,
                                         TimeShape::kFewDistinct)));

// ---------------------------------------------------------------------------
// Deterministic edge cases the random driver only hits probabilistically.

TEST(CalendarQueueEdge, LargeSameTimestampBurstFiresInInsertionOrder) {
  // One bucket absorbs everything; exercises the head-offset compaction.
  CalendarQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 20000; ++i) q.schedule(5.0, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop_and_run();
  ASSERT_EQ(fired.size(), 20000u);
  for (int i = 0; i < 20000; ++i) ASSERT_EQ(fired[i], i);
}

TEST(CalendarQueueEdge, GrowShrinkCycleKeepsOrder) {
  // Fill far past the grow threshold, drain under the shrink threshold,
  // refill; pops must stay globally sorted throughout.
  CalendarQueue q;
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> u(0.0, 500.0);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8000; ++i) q.schedule(u(rng), [] {});
    SimTime prev = -1.0;
    for (int i = 0; i < 7000; ++i) {
      const SimTime at = q.pop_and_run();
      ASSERT_GE(at, prev);
      prev = at;
    }
  }
  SimTime prev = -1.0;
  while (!q.empty()) {
    const SimTime at = q.pop_and_run();
    ASSERT_GE(at, prev);
    prev = at;
  }
}

TEST(CalendarQueueEdge, CancelAllThenScheduleAgain) {
  CalendarQueue q;
  std::vector<EventHandle> hs;
  hs.reserve(1000);
  for (int i = 0; i < 1000; ++i) hs.push_back(q.schedule(double(i), [] {}));
  for (auto& h : hs) h.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), kTimeNever);
  bool ran = false;
  q.schedule(0.25, [&] { ran = true; });
  EXPECT_EQ(q.next_time(), 0.25);
  EXPECT_EQ(q.pop_and_run(), 0.25);
  EXPECT_TRUE(ran);
}

TEST(CalendarQueueEdge, CancelFrontExposesLaterEvent) {
  // The front cache holds a lower bound, not necessarily a live entry;
  // cancelling the cached minimum must not lose the successor.
  CalendarQueue q;
  EventHandle front = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.schedule(3.0, [] {});
  EXPECT_EQ(q.next_time(), 1.0);
  front.cancel();
  EXPECT_EQ(q.next_time(), 2.0);
  EXPECT_EQ(q.pop_and_run(), 2.0);
  EXPECT_EQ(q.pop_and_run(), 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueEdge, SchedulingBeforeCursorAfterPops) {
  // A real simulator never does this, but the queue API allows it: after
  // popping t=100 the scan cursor sits at t=100's bucket; a t=1 insert
  // must still pop first.
  CalendarQueue q;
  q.schedule(100.0, [] {});
  EXPECT_EQ(q.pop_and_run(), 100.0);
  q.schedule(1.0, [] {});
  q.schedule(200.0, [] {});
  EXPECT_EQ(q.next_time(), 1.0);
  EXPECT_EQ(q.pop_and_run(), 1.0);
  EXPECT_EQ(q.pop_and_run(), 200.0);
}

TEST(CalendarQueueEdge, RejectsNonFiniteAndNegativeTimes) {
  CalendarQueue q;
  EXPECT_THROW(q.schedule(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::quiet_NaN(), [] {}),
               std::invalid_argument);
  EXPECT_THROW(q.schedule(std::numeric_limits<double>::infinity(), [] {}),
               std::invalid_argument);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueEdge, SaveStateMatchesHeapEncoding) {
  // The snapshot byte layout is pinned to the historical heap encoding:
  // u64 scheduled_count, u64 live size, then ascending (f64 at, u64 seq).
  CalendarQueue q;
  q.schedule(2.0, [] {});
  EventHandle h = q.schedule(1.0, [] {});
  q.schedule(3.0, [] {});
  h.cancel();
  snapshot::Writer w;
  q.save_state(w);
  snapshot::Reader r(w.bytes());
  r.begin_section("event_queue");
  EXPECT_EQ(r.u64(), 3u);  // scheduled_count: all schedules ever
  EXPECT_EQ(r.u64(), 2u);  // live entries only
  EXPECT_EQ(r.f64(), 2.0);
  EXPECT_EQ(r.u64(), 0u);  // seq of the 2.0 event (first scheduled)
  EXPECT_EQ(r.f64(), 3.0);
  EXPECT_EQ(r.u64(), 2u);
  r.end_section();
}

}  // namespace
}  // namespace dftmsn
