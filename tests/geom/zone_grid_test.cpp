#include "geom/zone_grid.hpp"

#include <gtest/gtest.h>

namespace dftmsn {
namespace {

TEST(ZoneGrid, PaperGeometry) {
  // The default scenario: 150 m field in a 5x5 grid of 30 m zones.
  ZoneGrid g(150.0, 5);
  EXPECT_EQ(g.zone_count(), 25);
  EXPECT_DOUBLE_EQ(g.zone_edge(), 30.0);
}

TEST(ZoneGrid, InvalidArgumentsThrow) {
  EXPECT_THROW(ZoneGrid(0.0, 5), std::invalid_argument);
  EXPECT_THROW(ZoneGrid(100.0, 0), std::invalid_argument);
}

TEST(ZoneGrid, ZoneOfCorners) {
  ZoneGrid g(150.0, 5);
  EXPECT_EQ(g.zone_of({0.0, 0.0}), 0);
  EXPECT_EQ(g.zone_of({149.9, 0.0}), 4);
  EXPECT_EQ(g.zone_of({0.0, 149.9}), 20);
  EXPECT_EQ(g.zone_of({149.9, 149.9}), 24);
}

TEST(ZoneGrid, ZoneOfIsRowMajor) {
  ZoneGrid g(150.0, 5);
  EXPECT_EQ(g.zone_of({35.0, 5.0}), 1);   // col 1, row 0
  EXPECT_EQ(g.zone_of({5.0, 35.0}), 5);   // col 0, row 1
  EXPECT_EQ(g.zone_of({75.0, 75.0}), 12); // center zone
}

TEST(ZoneGrid, OutOfFieldPointsClampToNearestZone) {
  ZoneGrid g(150.0, 5);
  EXPECT_EQ(g.zone_of({-5.0, -5.0}), 0);
  EXPECT_EQ(g.zone_of({200.0, 200.0}), 24);
  EXPECT_EQ(g.zone_of({150.0, 150.0}), 24);  // exact far edge
}

TEST(ZoneGrid, ZoneCenter) {
  ZoneGrid g(150.0, 5);
  const Vec2 c0 = g.zone_center(0);
  EXPECT_DOUBLE_EQ(c0.x, 15.0);
  EXPECT_DOUBLE_EQ(c0.y, 15.0);
  const Vec2 c12 = g.zone_center(12);
  EXPECT_DOUBLE_EQ(c12.x, 75.0);
  EXPECT_DOUBLE_EQ(c12.y, 75.0);
}

TEST(ZoneGrid, ZoneBounds) {
  ZoneGrid g(150.0, 5);
  const auto b = g.zone_bounds(6);  // col 1, row 1
  EXPECT_DOUBLE_EQ(b.min.x, 30.0);
  EXPECT_DOUBLE_EQ(b.min.y, 30.0);
  EXPECT_DOUBLE_EQ(b.max.x, 60.0);
  EXPECT_DOUBLE_EQ(b.max.y, 60.0);
}

TEST(ZoneGrid, BadZoneIdThrows) {
  ZoneGrid g(150.0, 5);
  EXPECT_THROW((void)g.zone_center(-1), std::out_of_range);
  EXPECT_THROW((void)g.zone_center(25), std::out_of_range);
  EXPECT_THROW((void)g.zone_bounds(25), std::out_of_range);
}

TEST(ZoneGrid, ContainsMatchesZoneOf) {
  ZoneGrid g(150.0, 5);
  EXPECT_TRUE(g.contains(0, {10.0, 10.0}));
  EXPECT_FALSE(g.contains(1, {10.0, 10.0}));
}

TEST(ZoneGrid, ClampToField) {
  ZoneGrid g(150.0, 5);
  const Vec2 c = g.clamp_to_field({-10.0, 175.0});
  EXPECT_DOUBLE_EQ(c.x, 0.0);
  EXPECT_DOUBLE_EQ(c.y, 150.0);
}

TEST(ZoneGrid, CenterRoundTripsThroughZoneOf) {
  ZoneGrid g(240.0, 8);
  for (ZoneId z = 0; z < g.zone_count(); ++z) {
    EXPECT_EQ(g.zone_of(g.zone_center(z)), z);
  }
}

}  // namespace
}  // namespace dftmsn
