#include "geom/vec2.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace dftmsn {
namespace {

TEST(Vec2, DefaultIsOrigin) {
  Vec2 v;
  EXPECT_DOUBLE_EQ(v.x, 0.0);
  EXPECT_DOUBLE_EQ(v.y, 0.0);
}

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -4.0};
  EXPECT_EQ(a + b, (Vec2{4.0, -2.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 6.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
}

TEST(Vec2, CompoundAdd) {
  Vec2 a{1.0, 1.0};
  a += Vec2{2.0, 3.0};
  EXPECT_EQ(a, (Vec2{3.0, 4.0}));
}

TEST(Vec2, Norm) {
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm2(), 25.0);
  EXPECT_DOUBLE_EQ(Vec2{}.norm(), 0.0);
}

TEST(Vec2, NormalizedUnitLength) {
  const Vec2 n = Vec2{3.0, 4.0}.normalized();
  EXPECT_NEAR(n.norm(), 1.0, 1e-12);
  EXPECT_NEAR(n.x, 0.6, 1e-12);
  EXPECT_NEAR(n.y, 0.8, 1e-12);
}

TEST(Vec2, NormalizedZeroIsZero) {
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Vec2, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance2({1, 1}, {4, 5}), 25.0);
}

TEST(Vec2, UnitFromAngle) {
  const Vec2 e = unit_from_angle(0.0);
  EXPECT_NEAR(e.x, 1.0, 1e-12);
  EXPECT_NEAR(e.y, 0.0, 1e-12);
  const Vec2 up = unit_from_angle(std::numbers::pi / 2);
  EXPECT_NEAR(up.x, 0.0, 1e-12);
  EXPECT_NEAR(up.y, 1.0, 1e-12);
}

}  // namespace
}  // namespace dftmsn
