#include "analysis/lifetime.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dftmsn {
namespace {

TEST(BatteryModel, LifetimeInverseOfPower) {
  BatteryModel b;
  b.capacity_joules = 1000.0;
  EXPECT_DOUBLE_EQ(b.lifetime_s(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(b.lifetime_s(0.5), 2000.0);
  EXPECT_TRUE(std::isinf(b.lifetime_s(0.0)));
  EXPECT_THROW(b.lifetime_s(-1.0), std::invalid_argument);
}

TEST(BatteryModel, DefaultBudgetVsMotePowers) {
  // Always-on idle listening (13.5 mW) drains 2xAA in ~18 days; a 1%-duty
  // sleeper (~0.15 mW) lasts years — the whole point of Sec. 4.1.
  BatteryModel b;
  const double always_on_days = b.lifetime_s(13.5e-3) / 86'400.0;
  const double sleeper_days = b.lifetime_s(0.15e-3) / 86'400.0;
  EXPECT_NEAR(always_on_days, 18.0, 2.0);
  EXPECT_GT(sleeper_days, 365.0);
}

TEST(LifetimeStats, OrderStatistics) {
  BatteryModel b;
  b.capacity_joules = 100.0;
  // Powers 1, 2, 4, 5, 10 W -> lifetimes 100, 50, 25, 20, 10 s.
  const std::vector<double> powers{1.0, 2.0, 4.0, 5.0, 10.0};
  const LifetimeStats s = estimate_lifetimes(b, powers, 0.2);
  EXPECT_DOUBLE_EQ(s.min_s, 10.0);
  EXPECT_DOUBLE_EQ(s.max_s, 100.0);
  EXPECT_DOUBLE_EQ(s.median_s, 25.0);
  // 20% of 5 nodes = 1 node dead -> first death.
  EXPECT_DOUBLE_EQ(s.network_lifetime_s, 10.0);
}

TEST(LifetimeStats, NetworkLifetimeQuantile) {
  BatteryModel b;
  b.capacity_joules = 100.0;
  const std::vector<double> powers{1.0, 2.0, 4.0, 5.0, 10.0};
  const LifetimeStats s60 = estimate_lifetimes(b, powers, 0.6);
  // 60% of 5 = 3 nodes dead -> third death time (lifetimes sorted:
  // 10, 20, 25, 50, 100).
  EXPECT_DOUBLE_EQ(s60.network_lifetime_s, 25.0);
  const LifetimeStats all = estimate_lifetimes(b, powers, 1.0);
  EXPECT_DOUBLE_EQ(all.network_lifetime_s, 100.0);
}

TEST(LifetimeStats, Guards) {
  BatteryModel b;
  EXPECT_THROW(estimate_lifetimes(b, {}, 0.2), std::invalid_argument);
  EXPECT_THROW(estimate_lifetimes(b, {1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(estimate_lifetimes(b, {1.0}, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace dftmsn
