#include "analysis/delivery_models.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace dftmsn {
namespace {

TEST(DirectModel, SingleMessageProbability) {
  EXPECT_DOUBLE_EQ(direct_delivery_probability(0.01, 0.0), 0.0);
  EXPECT_NEAR(direct_delivery_probability(0.01, 100.0), 1.0 - std::exp(-1.0),
              1e-12);
  EXPECT_NEAR(direct_delivery_probability(1.0, 1e6), 1.0, 1e-9);
}

TEST(DirectModel, RatioLimits) {
  // λT -> 0: nothing delivers; λT -> inf: everything does.
  EXPECT_NEAR(direct_delivery_ratio(1e-9, 1.0), 0.0, 1e-6);
  EXPECT_NEAR(direct_delivery_ratio(1.0, 1e6), 1.0, 1e-5);
}

TEST(DirectModel, RatioKnownValue) {
  // λT = 1: ratio = 1 - (1 - e^-1) = e^-1... no: 1 - (1-e^-1)/1.
  EXPECT_NEAR(direct_delivery_ratio(0.001, 1000.0),
              1.0 - (1.0 - std::exp(-1.0)), 1e-12);
}

TEST(DirectModel, MonotoneInRateAndHorizon) {
  double prev = 0.0;
  for (double lambda : {1e-4, 3e-4, 1e-3, 3e-3}) {
    const double r = direct_delivery_ratio(lambda, 25'000.0);
    EXPECT_GT(r, prev);
    prev = r;
  }
  prev = 0.0;
  for (double horizon : {1000.0, 5000.0, 25'000.0}) {
    const double r = direct_delivery_ratio(3e-4, horizon);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(DirectModel, InvalidArgsThrow) {
  EXPECT_THROW(direct_delivery_ratio(-1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(direct_delivery_ratio(1.0, 0.0), std::invalid_argument);
}

TEST(EpidemicModel, ReducesToDirectWithoutSpreading) {
  // β = 0: one carrier forever — identical to direct transmission.
  const double lambda = 5e-4;
  for (double t : {100.0, 1000.0, 5000.0}) {
    EXPECT_NEAR(epidemic_delivery_probability(0.0, lambda, 50, t, 0.1),
                direct_delivery_probability(lambda, t), 1e-3);
  }
}

TEST(EpidemicModel, SpreadingBeatsDirect) {
  const double lambda = 2e-4;
  const double direct = direct_delivery_probability(lambda, 2000.0);
  const double epi =
      epidemic_delivery_probability(1e-4, lambda, 50, 2000.0, 0.5);
  EXPECT_GT(epi, direct);
}

TEST(EpidemicModel, MonotoneInBeta) {
  double prev = 0.0;
  for (double beta : {0.0, 1e-6, 1e-5, 1e-4}) {
    const double p =
        epidemic_delivery_probability(beta, 1e-4, 100, 3000.0, 0.5);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
}

TEST(EpidemicModel, InfectionCappedAtPopulation) {
  // Huge beta: instantaneous full infection; survival = exp(-λ n t).
  const double p =
      epidemic_delivery_probability(10.0, 1e-4, 20, 1000.0, 0.1);
  EXPECT_NEAR(p, 1.0 - std::exp(-1e-4 * 20 * 1000.0), 0.02);
}

TEST(EpidemicModel, RatioAveragesBelowFullHorizonProbability) {
  const double full =
      epidemic_delivery_probability(1e-5, 1e-4, 100, 25'000.0, 1.0);
  const double ratio =
      epidemic_delivery_ratio(1e-5, 1e-4, 100, 25'000.0, 1.0);
  EXPECT_LT(ratio, full);
  EXPECT_GT(ratio, 0.0);
}

TEST(EpidemicModel, InvalidArgsThrow) {
  EXPECT_THROW(epidemic_delivery_probability(-1.0, 1.0, 10, 1.0),
               std::invalid_argument);
  EXPECT_THROW(epidemic_delivery_probability(1.0, 1.0, 0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(epidemic_delivery_probability(1.0, 1.0, 10, 1.0, 0.0),
               std::invalid_argument);
}

TEST(ContactRateEstimator, BasicAndGuards) {
  // 45 episodes among 10 nodes (45 pairs) over 100 s -> 0.01 per pair-s.
  EXPECT_DOUBLE_EQ(estimate_pairwise_contact_rate(45, 10, 100.0), 0.01);
  EXPECT_THROW(estimate_pairwise_contact_rate(1, 1, 100.0),
               std::invalid_argument);
  EXPECT_THROW(estimate_pairwise_contact_rate(1, 10, 0.0),
               std::invalid_argument);
}


TEST(DirectModel, HeterogeneousBelowMeanFieldByJensen) {
  // Half the population at 2λ, half at 0: mean rate λ, but the zero-rate
  // half never delivers.
  const std::vector<double> lambdas{2e-3, 2e-3, 0.0, 0.0};
  const double hetero = direct_delivery_ratio_heterogeneous(lambdas, 5000.0);
  const double meanfield = direct_delivery_ratio(1e-3, 5000.0);
  EXPECT_LT(hetero, meanfield);
  EXPECT_NEAR(hetero, 0.5 * direct_delivery_ratio(2e-3, 5000.0), 1e-12);
}

TEST(DirectModel, HeterogeneousMatchesHomogeneousWhenUniform) {
  const std::vector<double> lambdas{1e-3, 1e-3, 1e-3};
  EXPECT_NEAR(direct_delivery_ratio_heterogeneous(lambdas, 2000.0),
              direct_delivery_ratio(1e-3, 2000.0), 1e-12);
}

TEST(DirectModel, HeterogeneousEmptyThrows) {
  EXPECT_THROW(direct_delivery_ratio_heterogeneous({}, 100.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace dftmsn
