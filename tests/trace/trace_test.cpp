#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "mobility/mobility_manager.hpp"
#include "mobility/patrol_mobility.hpp"
#include "trace/contact_analysis.hpp"
#include "trace/contact_probe.hpp"
#include "trace/recorder.hpp"

namespace dftmsn {
namespace {

TEST(TraceRecorder, RecordsAndCounts) {
  TraceRecorder rec;
  rec.record({TraceEventType::kDelivery, 1.0, 3, 4, 7, 0.0});
  rec.record({TraceEventType::kDrop, 2.0, 3, kInvalidNode, 8, 0.0});
  rec.record({TraceEventType::kDelivery, 3.0, 5, 4, 9, 0.0});
  EXPECT_EQ(rec.events().size(), 3u);
  EXPECT_EQ(rec.count(TraceEventType::kDelivery), 2u);
  EXPECT_EQ(rec.count(TraceEventType::kSleep), 0u);
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
}

TEST(CsvTraceSink, WritesRows) {
  const std::string path = "trace_test_tmp.csv";
  {
    CsvTraceSink csv(path);
    csv.record({TraceEventType::kContactStart, 1.5, 1, 2, 0, 0.0});
    EXPECT_EQ(csv.written(), 1u);
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("CONTACT_START,1.5,1,2,0,0"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TeeTraceSink, FansOut) {
  TraceRecorder a, b;
  TeeTraceSink tee;
  tee.add(a);
  tee.add(b);
  tee.record({TraceEventType::kWake, 0.0, 1, kInvalidNode, 0, 0.0});
  EXPECT_EQ(a.events().size(), 1u);
  EXPECT_EQ(b.events().size(), 1u);
}

TEST(TraceEventNames, Defined) {
  EXPECT_STREQ(trace_event_name(TraceEventType::kContactStart),
               "CONTACT_START");
  EXPECT_STREQ(trace_event_name(TraceEventType::kDelivery), "DELIVERY");
}

/// Two nodes passing each other: one clean contact episode.
TEST(ContactProbe, DetectsOneEpisodeWithDuration) {
  Simulator sim;
  MobilityManager mob(sim, 0.5);
  // Node 0 static at origin; node 1 patrols a 100 m out-and-back line at
  // 10 m/s passing through the origin.
  mob.add_node(0, std::make_unique<StaticMobility>(Vec2{0, 0}));
  mob.add_node(1, std::make_unique<PatrolMobility>(
                      std::vector<Vec2>{{-50, 0}, {50, 0}}, 10.0));
  TraceRecorder rec;
  ContactProbe probe(sim, mob, 10.0, 0.5, rec);
  mob.start();
  probe.start();
  sim.run_until(9.9);  // node 1 is at +49 m: contact over, not yet back
  probe.finish();

  ASSERT_EQ(rec.count(TraceEventType::kContactStart), 1u);
  ASSERT_EQ(rec.count(TraceEventType::kContactEnd), 1u);
  // In range for |x| <= 10 at 10 m/s -> ~2 s episode (sampling 0.5 s).
  const TraceEvent& end = rec.events().back();
  EXPECT_NEAR(end.value, 2.0, 1.0);
}

TEST(ContactProbe, FinishClosesOpenContacts) {
  Simulator sim;
  MobilityManager mob(sim, 0.5);
  mob.add_node(0, std::make_unique<StaticMobility>(Vec2{0, 0}));
  mob.add_node(1, std::make_unique<StaticMobility>(Vec2{5, 0}));
  TraceRecorder rec;
  ContactProbe probe(sim, mob, 10.0, 0.5, rec);
  mob.start();
  probe.start();
  sim.run_until(10.0);
  EXPECT_EQ(probe.open_contacts(), 1u);
  EXPECT_EQ(rec.count(TraceEventType::kContactEnd), 0u);
  probe.finish();
  EXPECT_EQ(probe.open_contacts(), 0u);
  ASSERT_EQ(rec.count(TraceEventType::kContactEnd), 1u);
  EXPECT_NEAR(rec.events().back().value, 9.5, 1.0);
}

TEST(ContactProbe, InvalidArgsThrow) {
  Simulator sim;
  MobilityManager mob(sim, 0.5);
  TraceRecorder rec;
  EXPECT_THROW(ContactProbe(sim, mob, 0.0, 1.0, rec), std::invalid_argument);
  EXPECT_THROW(ContactProbe(sim, mob, 10.0, 0.0, rec),
               std::invalid_argument);
}

TEST(ContactAnalysis, AggregatesEpisodesAndInterContact) {
  std::vector<TraceEvent> ev;
  // Pair (1,2): two episodes [0,5] and [20,24]; pair (1,9): one episode.
  ev.push_back({TraceEventType::kContactStart, 0.0, 1, 2, 0, 0.0});
  ev.push_back({TraceEventType::kContactEnd, 5.0, 1, 2, 0, 5.0});
  ev.push_back({TraceEventType::kContactStart, 20.0, 1, 2, 0, 0.0});
  ev.push_back({TraceEventType::kContactEnd, 24.0, 1, 2, 0, 4.0});
  ev.push_back({TraceEventType::kContactStart, 3.0, 1, 9, 0, 0.0});
  ev.push_back({TraceEventType::kContactEnd, 6.0, 1, 9, 0, 3.0});

  const ContactStats stats = analyze_contacts(ev, /*first_sink_id=*/9);
  EXPECT_EQ(stats.contacts, 3u);
  EXPECT_DOUBLE_EQ(stats.duration_s.mean(), 4.0);
  ASSERT_EQ(stats.inter_contact_s.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.inter_contact_s.mean(), 15.0);  // 20 - 5
  EXPECT_EQ(stats.contacts_per_node.at(1), 3u);
  EXPECT_EQ(stats.contacts_per_node.at(2), 2u);
  EXPECT_EQ(stats.sink_contacts_per_node.at(1), 1u);
  EXPECT_FALSE(stats.sink_contacts_per_node.contains(2));
}

TEST(ContactAnalysis, SinkContactRatesIncludeZeroNodes) {
  std::vector<TraceEvent> ev;
  ev.push_back({TraceEventType::kContactEnd, 4.0, 0, 5, 0, 4.0});
  const ContactStats stats = analyze_contacts(ev, 5);
  const auto rates = sink_contact_rates(stats, 5, 5, 100.0);
  EXPECT_EQ(rates.size(), 5u);
  EXPECT_DOUBLE_EQ(rates.at(0), 0.01);
  EXPECT_DOUBLE_EQ(rates.at(1), 0.0);
  EXPECT_THROW(sink_contact_rates(stats, 5, 5, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace dftmsn
