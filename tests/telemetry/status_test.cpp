// Unit coverage for the live observability plane: StatusBoard lifecycle
// transitions and hand-computed EMA/ETA math, the canonical status.json
// document (render -> parse_json round-trip), the Prometheus exposition,
// the JSON reader's accept/reject behavior, the HTTP status server at
// the socket level, and the lifecycle trace file format.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "telemetry/json_value.hpp"
#include "telemetry/lifecycle_trace.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/status.hpp"
#include "telemetry/status_server.hpp"

namespace dftmsn::telemetry {
namespace {

// StatusBoard owns a mutex, so it can't be returned by value; tests
// default-construct and reset in place.
void make_board(StatusBoard& b, std::size_t n, double horizon = 100.0) {
  b.reset(n, std::vector<double>(n, horizon));
}

TEST(StatusBoard, StartsAllPending) {
  StatusBoard b;
  make_board(b, 3);
  const StatusSnapshot s = b.snapshot();
  EXPECT_EQ(s.specs.size(), 3u);
  EXPECT_EQ(s.phase_counts[static_cast<int>(SpecPhase::kPending)], 3u);
  EXPECT_TRUE(s.healthy);
  EXPECT_EQ(s.events_executed, 0u);
  EXPECT_DOUBLE_EQ(s.eta_s, -1.0);
}

TEST(StatusBoard, LifecycleTransitions) {
  StatusBoard b;
  make_board(b, 2);
  b.mark_running(0, 0);
  EXPECT_EQ(b.snapshot().specs[0].phase, SpecPhase::kRunning);

  b.mark_checkpoint(0, 2);
  {
    const SpecProgress p = b.snapshot().specs[0];
    EXPECT_EQ(p.phase, SpecPhase::kCheckpointed);
    EXPECT_EQ(p.checkpoints, 2u);
  }

  b.mark_retrying(0, 1, "attempt 0: boom");
  {
    const SpecProgress p = b.snapshot().specs[0];
    EXPECT_EQ(p.phase, SpecPhase::kRetrying);
    EXPECT_EQ(p.retries, 1);
    EXPECT_EQ(p.detail, "attempt 0: boom");
  }
  EXPECT_EQ(b.snapshot().retries_total, 1u);

  // A retry restarts the attempt: counters rewind, phase returns to
  // running, the failure detail stays visible until done/quarantine.
  b.update_progress(0, 500, 40.0);
  b.mark_running(0, 1);
  {
    const SpecProgress p = b.snapshot().specs[0];
    EXPECT_EQ(p.phase, SpecPhase::kRunning);
    EXPECT_EQ(p.events, 0u);
    EXPECT_DOUBLE_EQ(p.sim_time_s, 0.0);
  }

  b.update_progress(0, 1234, 80.0);
  b.mark_done(0);
  {
    const SpecProgress p = b.snapshot().specs[0];
    EXPECT_EQ(p.phase, SpecPhase::kDone);
    EXPECT_EQ(p.events, 1234u);
    EXPECT_DOUBLE_EQ(p.sim_time_s, 100.0);  // horizon, not last sample
    EXPECT_TRUE(p.detail.empty());
  }

  b.mark_quarantined(1, "attempt 2: kept dying");
  EXPECT_EQ(b.snapshot().specs[1].phase, SpecPhase::kQuarantined);
  EXPECT_FALSE(b.healthy());
}

TEST(StatusBoard, TerminalRowsRejectStaleSamples) {
  StatusBoard b;
  make_board(b, 1);
  b.mark_running(0, 0);
  b.update_progress(0, 10, 5.0);
  b.sync_checkpoints(0, 4);
  b.mark_done(0);
  // A sampler thread that raced the terminal transition must not rewind
  // the final values or double-count checkpoints.
  b.update_progress(0, 3, 1.0);
  b.mark_checkpoint(0, 2);
  const SpecProgress p = b.snapshot().specs[0];
  EXPECT_EQ(p.events, 10u);
  EXPECT_EQ(p.checkpoints, 4u);
  EXPECT_EQ(p.phase, SpecPhase::kDone);
}

TEST(StatusBoard, WatchdogStallFlipsHealthUntilRetry) {
  StatusBoard b;
  make_board(b, 2);
  b.mark_running(0, 0);
  EXPECT_TRUE(b.healthy());
  b.mark_watchdog(0);
  EXPECT_FALSE(b.healthy());
  EXPECT_EQ(b.snapshot().watchdog_trips, 1u);
  b.mark_retrying(0, 1, "watchdog");
  EXPECT_TRUE(b.healthy());  // the stall cleared with the restart
}

TEST(StatusBoard, EmaHandComputed) {
  StatusBoard b;
  make_board(b, 1, 1000.0);
  b.mark_running(0, 0);
  b.sample(0.0);  // seeds the window; no rate yet
  EXPECT_DOUBLE_EQ(b.snapshot().events_per_sec_ema, 0.0);

  b.update_progress(0, 100, 10.0);
  b.sample(1.0);  // first instantaneous rate seeds the EMA directly
  EXPECT_DOUBLE_EQ(b.snapshot().events_per_sec_ema, 100.0);

  b.update_progress(0, 300, 30.0);
  b.sample(2.0);  // inst = 200; ema = 0.25*200 + 0.75*100
  EXPECT_DOUBLE_EQ(b.snapshot().events_per_sec_ema, 125.0);
}

TEST(StatusBoard, EmaClampsRetryRewind) {
  StatusBoard b;
  make_board(b, 1, 1000.0);
  b.mark_running(0, 0);
  b.sample(0.0);
  b.update_progress(0, 500, 50.0);
  b.sample(1.0);
  EXPECT_DOUBLE_EQ(b.snapshot().events_per_sec_ema, 500.0);
  // A retry rewinds the per-attempt counter; the instantaneous rate is
  // clamped to 0 instead of going negative.
  b.mark_running(0, 1);
  b.sample(2.0);
  EXPECT_DOUBLE_EQ(b.snapshot().events_per_sec_ema, 0.25 * 0.0 + 0.75 * 500.0);
}

TEST(StatusBoard, EtaHandComputed) {
  StatusBoard b;
  make_board(b, 2, 100.0);
  b.mark_running(0, 0);
  b.mark_done(0);  // fraction 1.0
  b.mark_running(1, 0);
  b.update_progress(1, 10, 50.0);  // fraction 0.5
  b.sample(3.0);
  const StatusSnapshot s = b.snapshot();
  EXPECT_DOUBLE_EQ(s.progress, 0.75);
  // eta = wall * (1 - p) / p = 3 * 0.25 / 0.75
  EXPECT_DOUBLE_EQ(s.eta_s, 1.0);
}

TEST(StatusBoard, EtaUnknownAtZeroProgressAndZeroWhenDone) {
  StatusBoard b;
  make_board(b, 1, 100.0);
  b.mark_running(0, 0);
  b.sample(5.0);
  EXPECT_DOUBLE_EQ(b.snapshot().eta_s, -1.0);
  b.mark_done(0);
  b.sample(6.0);
  EXPECT_DOUBLE_EQ(b.snapshot().eta_s, 0.0);
}

TEST(StatusJson, RoundTripsThroughParser) {
  StatusBoard b;
  make_board(b, 2, 200.0);
  b.mark_running(0, 0);
  b.update_progress(0, 42, 100.0);
  b.mark_checkpoint(0, 1);
  b.mark_quarantined(1, "attempt 2: segv \"worker\"");
  b.sample(4.0);

  const std::string doc = b.render_status_json();
  ASSERT_FALSE(doc.empty());
  EXPECT_EQ(doc.back(), '\n');
  const JsonValue v = parse_json(doc);

  EXPECT_EQ(v.string_or("schema", ""), "dftmsn-status-v1");
  EXPECT_DOUBLE_EQ(v.number_or("wall_s", -1.0), 4.0);
  EXPECT_FALSE(v.bool_or("healthy", true));
  EXPECT_DOUBLE_EQ(v.number_or("specs_total", 0.0), 2.0);
  const JsonValue* phases = v.find("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_DOUBLE_EQ(phases->number_or("checkpointed", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(phases->number_or("quarantined", 0.0), 1.0);
  const JsonValue* specs = v.find("specs");
  ASSERT_NE(specs, nullptr);
  ASSERT_EQ(specs->items.size(), 2u);
  EXPECT_EQ(specs->items[0].string_or("phase", ""), "checkpointed");
  EXPECT_DOUBLE_EQ(specs->items[0].number_or("events", 0.0), 42.0);
  EXPECT_EQ(specs->items[1].string_or("detail", ""),
            "attempt 2: segv \"worker\"");
}

TEST(StatusJson, TableRendersParsedDocument) {
  StatusBoard b;
  make_board(b, 1, 100.0);
  b.mark_running(0, 0);
  b.update_progress(0, 7, 25.0);
  b.sample(1.0);
  const std::string table =
      render_status_table(parse_json(b.render_status_json()));
  EXPECT_NE(table.find("healthy"), std::string::npos);
  EXPECT_NE(table.find("running"), std::string::npos);
  EXPECT_NE(table.find("progress: 25.0%"), std::string::npos);
}

TEST(Prometheus, ExposesBoardAndRegistry) {
  StatusBoard b;
  make_board(b, 2, 100.0);
  b.mark_running(0, 0);
  b.mark_done(0);
  Registry r;
  r.counter("mac.rts_tx")->inc(7);
  r.gauge("queue.fill")->set(0.5);
  b.absorb_registry(r);
  b.sample(1.0);

  const std::string text = b.render_prometheus();
  EXPECT_NE(text.find("# TYPE dftmsn_up gauge\ndftmsn_up 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("dftmsn_healthy 1\n"), std::string::npos);
  EXPECT_NE(text.find("dftmsn_specs{phase=\"done\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("dftmsn_specs{phase=\"pending\"} 1\n"),
            std::string::npos);
  // Registry names sanitize dots to underscores.
  EXPECT_NE(text.find("dftmsn_registry_mac_rts_tx_total 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("dftmsn_registry_queue_fill 0.5\n"), std::string::npos);
}

TEST(JsonParser, AcceptsTheFullGrammar) {
  const JsonValue v = parse_json(
      R"({"a": [1, -2.5e2, true, false, null], "s": "x\n\"A"})");
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 5u);
  EXPECT_DOUBLE_EQ(a->items[0].num, 1.0);
  EXPECT_DOUBLE_EQ(a->items[1].num, -250.0);
  EXPECT_TRUE(a->items[2].b);
  EXPECT_FALSE(a->items[3].b);
  EXPECT_EQ(a->items[4].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(v.string_or("s", ""), "x\n\"A");
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse_json("{} trailing"), std::runtime_error);
  EXPECT_THROW(parse_json("nul"), std::runtime_error);
}

/// Minimal HTTP/1.1 GET against 127.0.0.1:port; returns the raw response.
std::string http_get(int port, const std::string& target,
                     const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string req =
      method + " " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    out.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return out;
}

TEST(StatusServer, ServesStatusHealthzAndMetrics) {
  bool healthy = true;
  StatusServer::Handlers h;
  h.status_json = [] { return std::string("{\"ok\": true}\n"); };
  h.metrics_text = [] { return std::string("dftmsn_up 1\n"); };
  h.healthy = [&healthy] { return healthy; };
  StatusServer server(0, std::move(h));  // ephemeral port
  ASSERT_GT(server.port(), 0);

  const std::string status = http_get(server.port(), "/status");
  EXPECT_NE(status.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(status.find("application/json"), std::string::npos);
  EXPECT_NE(status.find("{\"ok\": true}"), std::string::npos);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("dftmsn_up 1"), std::string::npos);

  EXPECT_NE(http_get(server.port(), "/healthz").find("200 OK"),
            std::string::npos);
  healthy = false;
  EXPECT_NE(http_get(server.port(), "/healthz").find("503"),
            std::string::npos);

  EXPECT_NE(http_get(server.port(), "/nope").find("404"), std::string::npos);
  EXPECT_NE(http_get(server.port(), "/status", "POST").find("405"),
            std::string::npos);
  // Query strings are stripped before routing.
  EXPECT_NE(http_get(server.port(), "/status?x=1").find("200 OK"),
            std::string::npos);
}

TEST(LifecycleTraceFile, EveryLineIsAChromeTraceEvent) {
  const std::string path = "lifecycle_trace_test.tmp.jsonl";
  {
    LifecycleTrace t(path);
    t.begin(0, "attempt", {{"attempt", "0"}});
    t.instant(0, "checkpoint", {{"seq", "1"}});
    t.instant(1, "worker_spawn", {{"pid", "123"}, {"attempt", "0"}});
    t.end(0, "attempt");
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "[");
  int events = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    ASSERT_EQ(line.back(), ',');  // truncated-array form Perfetto accepts
    const JsonValue v = parse_json(line.substr(0, line.size() - 1));
    EXPECT_FALSE(v.string_or("name", "").empty());
    EXPECT_EQ(v.string_or("cat", ""), "sweep");
    EXPECT_DOUBLE_EQ(v.number_or("pid", 0.0), 1.0);
    const std::string ph = v.string_or("ph", "");
    EXPECT_TRUE(ph == "B" || ph == "E" || ph == "i") << ph;
    ++events;
  }
  EXPECT_EQ(events, 4);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dftmsn::telemetry
