// Telemetry subsystem tests: registry semantics and snapshot round-trip,
// probe macros (zero evaluation when disabled), profiler accumulation,
// MAC trace/instrument emission, the sim-time sampler, Jain fairness, and
// canonical report rendering.
#include <gtest/gtest.h>

#include <stdexcept>

#include "experiment/runner.hpp"
#include "experiment/world.hpp"
#include "stats/metrics.hpp"
#include "telemetry/probes.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/report.hpp"
#include "telemetry/sampler.hpp"
#include "trace/recorder.hpp"

namespace dftmsn {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::Registry;

TEST(Registry, CounterGaugeBasics) {
  Registry reg;
  Counter* c = reg.counter("a");
  c->inc();
  c->inc(4);
  EXPECT_EQ(c->value(), 5u);
  EXPECT_EQ(reg.counter("a"), c);  // same name -> same instrument

  Gauge* g = reg.gauge("g");
  g->set(2.5);
  g->set(-1.0);
  EXPECT_DOUBLE_EQ(g->value(), -1.0);
  EXPECT_FALSE(reg.empty());
}

TEST(Registry, HistogramBucketsValuesLinearly) {
  Registry reg;
  Histogram* h = reg.histogram("h", 0.0, 10.0, 5);  // width-2 bins
  h->observe(-0.5);  // underflow
  h->observe(0.0);   // bin 0
  h->observe(1.999);  // bin 0
  h->observe(9.999);  // bin 4
  h->observe(10.0);   // hi is exclusive -> overflow
  h->observe(42.0);   // overflow
  EXPECT_EQ(h->underflow(), 1u);
  EXPECT_EQ(h->overflow(), 2u);
  EXPECT_EQ(h->buckets()[0], 2u);
  EXPECT_EQ(h->buckets()[4], 1u);
  EXPECT_EQ(h->count(), 6u);
  EXPECT_DOUBLE_EQ(h->min(), -0.5);
  EXPECT_DOUBLE_EQ(h->max(), 42.0);
}

TEST(Registry, EmptyHistogramReportsZeroExtremes) {
  Registry reg;
  Histogram* h = reg.histogram("h", 0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h->min(), 0.0);
  EXPECT_DOUBLE_EQ(h->max(), 0.0);
  EXPECT_DOUBLE_EQ(h->mean(), 0.0);
}

TEST(Registry, HistogramGeometryMismatchThrows) {
  Registry reg;
  reg.histogram("h", 0.0, 10.0, 5);
  EXPECT_THROW(reg.histogram("h", 0.0, 10.0, 6), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", 0.0, 20.0, 5), std::invalid_argument);
  EXPECT_NO_THROW(reg.histogram("h", 0.0, 10.0, 5));
}

TEST(Registry, MergeAddsCountersAndBins) {
  Registry a, b;
  a.counter("c")->inc(3);
  b.counter("c")->inc(4);
  b.counter("only_b")->inc(1);
  a.gauge("g")->set(1.0);
  b.gauge("g")->set(2.0);
  a.histogram("h", 0.0, 4.0, 2)->observe(1.0);
  b.histogram("h", 0.0, 4.0, 2)->observe(3.0);

  a.merge(b);
  EXPECT_EQ(a.counter("c")->value(), 7u);
  EXPECT_EQ(a.counter("only_b")->value(), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("g")->value(), 2.0);  // later run wins
  Histogram* h = a.histogram("h", 0.0, 4.0, 2);
  EXPECT_EQ(h->buckets()[0], 1u);
  EXPECT_EQ(h->buckets()[1], 1u);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_DOUBLE_EQ(h->sum(), 4.0);
}

TEST(Registry, MergeGeometryMismatchThrows) {
  Registry a, b;
  a.histogram("h", 0.0, 4.0, 2);
  b.histogram("h", 0.0, 8.0, 2);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Registry, SnapshotRoundTrips) {
  Registry reg;
  reg.counter("events")->inc(41);
  reg.gauge("load")->set(0.75);
  Histogram* h = reg.histogram("delay", 0.0, 100.0, 10);
  h->observe(-3.0);
  h->observe(12.5);
  h->observe(250.0);

  snapshot::Writer w;
  reg.save_state(w);
  Registry loaded;
  loaded.counter("stale")->inc(9);  // must be wiped by load_state
  snapshot::Reader r(w.bytes());
  loaded.load_state(r);

  EXPECT_EQ(loaded.counters().count("stale"), 0u);
  EXPECT_EQ(loaded.counter("events")->value(), 41u);
  EXPECT_DOUBLE_EQ(loaded.gauge("load")->value(), 0.75);
  Histogram* lh = loaded.histogram("delay", 0.0, 100.0, 10);
  EXPECT_EQ(lh->underflow(), 1u);
  EXPECT_EQ(lh->overflow(), 1u);
  EXPECT_EQ(lh->buckets()[1], 1u);
  EXPECT_DOUBLE_EQ(lh->sum(), h->sum());
  EXPECT_DOUBLE_EQ(lh->min(), h->min());
  EXPECT_DOUBLE_EQ(lh->max(), h->max());

  // Canonical byte form: logical equality implies byte equality.
  EXPECT_EQ(loaded.serialize(), reg.serialize());
}

TEST(Probes, DisabledProbeEvaluatesNothing) {
  int evaluations = 0;
  const auto observe = [&]() {
    ++evaluations;
    return 1.0;
  };
  Histogram* h = nullptr;
  Counter* c = nullptr;
  Gauge* g = nullptr;
  DFTMSN_PROBE_HIST(h, observe());
  DFTMSN_PROBE_COUNT(c);
  DFTMSN_PROBE_COUNT_N(c, static_cast<std::uint64_t>(observe()));
  DFTMSN_PROBE_GAUGE(g, observe());
  EXPECT_EQ(evaluations, 0);

  Registry reg;
  h = reg.histogram("h", 0.0, 2.0, 2);
  DFTMSN_PROBE_HIST(h, observe());
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(h->count(), 1u);
}

TEST(Profiler, ScopedTimerAccumulates) {
  telemetry::Profiler p;
  EXPECT_TRUE(p.empty());
  {
    telemetry::ScopedTimer t(&p, telemetry::Subsystem::kChannelScan);
  }
  {
    telemetry::ScopedTimer t(&p, telemetry::Subsystem::kChannelScan);
  }
  const telemetry::SubsystemStats& s =
      p.stats(telemetry::Subsystem::kChannelScan);
  EXPECT_EQ(s.calls, 2u);
  EXPECT_GE(s.total_s, 0.0);
  EXPECT_FALSE(p.empty());

  telemetry::Profiler q;
  q.merge(p);
  EXPECT_EQ(q.stats(telemetry::Subsystem::kChannelScan).calls, 2u);

  // Null profiler: the timer is a no-op.
  telemetry::ScopedTimer none(nullptr, telemetry::Subsystem::kMacHandshake);
}

Message make_msg(MessageId id, NodeId source) {
  Message m;
  m.id = id;
  m.source = source;
  m.created = 1.0;
  return m;
}

TEST(Metrics, JainFairnessHandComputed) {
  // Source 0: 2 generated, 2 delivered (r=1.0). Source 1: 2 generated,
  // 1 delivered (r=0.5). J = (1.5)^2 / (2 * 1.25) = 0.9 exactly.
  Metrics m;
  m.on_generated(make_msg(1, 0));
  m.on_generated(make_msg(2, 0));
  m.on_generated(make_msg(3, 1));
  m.on_generated(make_msg(4, 1));
  m.on_delivered(make_msg(1, 0), 2.0);
  m.on_delivered(make_msg(2, 0), 2.0);
  m.on_delivered(make_msg(3, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.jain_fairness_index(), 0.9);
}

TEST(Metrics, JainFairnessEdgeCases) {
  Metrics empty;
  EXPECT_DOUBLE_EQ(empty.jain_fairness_index(), 0.0);

  Metrics none_delivered;
  none_delivered.on_generated(make_msg(1, 0));
  EXPECT_DOUBLE_EQ(none_delivered.jain_fairness_index(), 0.0);

  Metrics uniform;  // every source at the same ratio -> exactly 1
  uniform.on_generated(make_msg(1, 0));
  uniform.on_generated(make_msg(2, 1));
  uniform.on_delivered(make_msg(1, 0), 2.0);
  uniform.on_delivered(make_msg(2, 1), 2.0);
  EXPECT_DOUBLE_EQ(uniform.jain_fairness_index(), 1.0);
}

TEST(Metrics, DropsByReasonBreakdown) {
  Metrics m;
  m.on_generated(make_msg(1, 0));
  m.on_dropped(make_msg(1, 0), DropReason::kOverflow);
  m.on_dropped(make_msg(1, 0), DropReason::kOverflow);
  m.on_dropped(make_msg(1, 0), DropReason::kDelivered);
  EXPECT_EQ(m.drops(DropReason::kOverflow), 2u);
  EXPECT_EQ(m.drops(DropReason::kDelivered), 1u);
  EXPECT_EQ(m.drops(DropReason::kNodeFailure), 0u);
  EXPECT_EQ(m.drops_by_reason().size(), 2u);
}

Config small_config(std::uint64_t seed = 7) {
  Config c;
  c.scenario.num_sensors = 20;
  c.scenario.num_sinks = 2;
  c.scenario.duration_s = 1200.0;
  c.scenario.seed = seed;
  return c;
}

TEST(WorldTelemetry, EnablingInstrumentsDoesNotPerturbTheRun) {
  Config plain = small_config();
  Config instrumented = plain;
  instrumented.telemetry.enabled = true;
  instrumented.telemetry.profile = true;

  const RunResult a = run_once(plain, ProtocolKind::kOpt);
  RunTelemetry tel;
  const RunResult b = run_once(instrumented, ProtocolKind::kOpt, &tel);

  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.mean_power_mw, b.mean_power_mw);

  // The instruments actually saw the run.
  EXPECT_GT(tel.registry.counter("mac.rts_tx")->value(), 0u);
  EXPECT_GT(tel.registry.histogram("delivery.delay_s", 0.0, 7200.0, 72)
                ->count(),
            0u);
  EXPECT_GT(
      tel.profile.stats(telemetry::Subsystem::kEventDispatch).calls, 0u);
}

TEST(WorldTelemetry, RegistryRoundTripsThroughWorldSnapshot) {
  Config cfg = small_config();
  cfg.telemetry.enabled = true;

  World w(cfg, ProtocolKind::kOpt);
  w.run_until(600.0);
  ASSERT_NE(w.registry(), nullptr);
  const std::vector<std::uint8_t> before = w.registry()->serialize();
  EXPECT_FALSE(w.registry()->empty());

  const std::vector<std::uint8_t> state = w.serialize_state();
  World replayed(cfg, ProtocolKind::kOpt);
  replayed.replay_to(w.sim().events_executed(), w.sim().now());
  ASSERT_NE(replayed.registry(), nullptr);
  EXPECT_EQ(replayed.registry()->serialize(), before);
  EXPECT_EQ(replayed.serialize_state(), state);
}

TEST(WorldTelemetry, MacEmitsHandshakeTraceEvents) {
  Config cfg = small_config();
  World w(cfg, ProtocolKind::kOpt);
  TraceRecorder rec;
  w.set_trace_sink(&rec);
  w.run();

  EXPECT_GT(rec.count(TraceEventType::kRtsTx), 0u);
  EXPECT_GT(rec.count(TraceEventType::kCtsTx), 0u);
  EXPECT_GT(rec.count(TraceEventType::kScheduleTx), 0u);
  EXPECT_GT(rec.count(TraceEventType::kAckRx), 0u);
  // Data flowed, so deliveries happened; sleep cycles too.
  EXPECT_GT(rec.count(TraceEventType::kDataTx), 0u);
  EXPECT_GT(rec.count(TraceEventType::kSleep), 0u);
}

TEST(Sampler, EmitsPeriodicRowsWithoutPerturbingMetrics) {
  Config cfg = small_config();
  const RunResult baseline = run_once(cfg, ProtocolKind::kOpt);

  World w(cfg, ProtocolKind::kOpt);
  TraceRecorder rec;
  telemetry::TimeSeriesSampler sampler(w.sim(), w.sensors(), w.metrics(),
                                       100.0, rec);
  sampler.start();
  w.run();

  // duration / period samples, one row per sensor per sample.
  EXPECT_EQ(sampler.samples_taken(), 12u);
  EXPECT_EQ(rec.count(TraceEventType::kSampleXi), 12u * 20u);
  EXPECT_EQ(rec.count(TraceEventType::kSampleBuffer), 12u * 20u);
  EXPECT_EQ(rec.count(TraceEventType::kSampleRadio), 12u * 20u);
  EXPECT_EQ(rec.count(TraceEventType::kSampleDeliveries), 12u);

  // Read-only events grow events_executed but change no metric.
  EXPECT_EQ(w.metrics().generated(), baseline.generated);
  EXPECT_EQ(w.metrics().delivered_unique(), baseline.delivered);
  EXPECT_EQ(w.sim().events_executed(),
            baseline.events_executed + sampler.samples_taken());
}

TEST(Sampler, RejectsNonPositivePeriod) {
  Config cfg = small_config();
  World w(cfg, ProtocolKind::kOpt);
  TraceRecorder rec;
  EXPECT_THROW(telemetry::TimeSeriesSampler(w.sim(), w.sensors(),
                                            w.metrics(), 0.0, rec),
               std::invalid_argument);
}

TEST(Report, CanonicalAndJobsIndependent) {
  Config cfg = small_config();
  cfg.telemetry.enabled = true;

  const auto render = [&](int jobs) {
    std::vector<RunSpec> specs(3);
    for (int r = 0; r < 3; ++r) {
      specs[static_cast<std::size_t>(r)].config = cfg;
      specs[static_cast<std::size_t>(r)].config.scenario.seed =
          cfg.scenario.seed + static_cast<std::uint64_t>(r);
    }
    std::vector<RunTelemetry> slots;
    const std::vector<RunResult> runs = run_specs(specs, jobs, &slots);
    RunTelemetry tel;
    for (const RunTelemetry& s : slots) {
      tel.registry.merge(s.registry);
      tel.profile.merge(s.profile);
    }
    telemetry::ReportInputs in;
    in.config = &cfg;
    in.runs = &runs;
    in.telemetry = &tel;
    return render_report_json(in);
  };

  const std::string serial = render(1);
  const std::string parallel = render(3);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"schema\": \"dftmsn-report-v1\""),
            std::string::npos);
  EXPECT_NE(serial.find("\"fairness_jain\""), std::string::npos);
  EXPECT_NE(serial.find("\"mac.rts_tx\""), std::string::npos);
  // Profiling was off, so the host-noise section must be absent.
  EXPECT_EQ(serial.find("\"profile\""), std::string::npos);
}

TEST(Report, RequiresConfigAndRuns) {
  telemetry::ReportInputs in;
  EXPECT_THROW(render_report_json(in), std::invalid_argument);
}

}  // namespace
}  // namespace dftmsn
