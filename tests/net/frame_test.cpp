#include "net/frame.hpp"

#include <gtest/gtest.h>

namespace dftmsn {
namespace {

TEST(Frame, TypeQueries) {
  Frame f{1, 50, RtsFrame{0.5, 0.1, 16, 7}};
  EXPECT_TRUE(f.is<RtsFrame>());
  EXPECT_FALSE(f.is<CtsFrame>());
  EXPECT_DOUBLE_EQ(f.as<RtsFrame>().sender_metric, 0.5);
  EXPECT_EQ(f.as<RtsFrame>().message_id, 7u);
}

TEST(Frame, TypeNames) {
  EXPECT_EQ(frame_type_name(Frame{0, 50, PreambleFrame{}}), "PREAMBLE");
  EXPECT_EQ(frame_type_name(Frame{0, 50, RtsFrame{}}), "RTS");
  EXPECT_EQ(frame_type_name(Frame{0, 50, CtsFrame{}}), "CTS");
  EXPECT_EQ(frame_type_name(Frame{0, 50, ScheduleFrame{}}), "SCHEDULE");
  EXPECT_EQ(frame_type_name(Frame{0, 1000, DataFrame{}}), "DATA");
  EXPECT_EQ(frame_type_name(Frame{0, 50, AckFrame{}}), "ACK");
}

TEST(Frame, IsDataFrame) {
  EXPECT_TRUE(is_data_frame(Frame{0, 1000, DataFrame{}}));
  EXPECT_FALSE(is_data_frame(Frame{0, 50, AckFrame{}}));
}

TEST(Frame, SchedulePayloadCarriesEntries) {
  ScheduleFrame sched;
  sched.entries.push_back({3, 0.4});
  sched.entries.push_back({5, 0.7});
  sched.nav_duration = 0.125;
  Frame f{2, 50, std::move(sched)};
  const auto& got = f.as<ScheduleFrame>();
  ASSERT_EQ(got.entries.size(), 2u);
  EXPECT_EQ(got.entries[0].receiver, 3u);
  EXPECT_DOUBLE_EQ(got.entries[1].ftd, 0.7);
  EXPECT_DOUBLE_EQ(got.nav_duration, 0.125);
}

TEST(Frame, DataPayloadCarriesMessage) {
  Message m;
  m.id = 42;
  m.source = 9;
  m.created = 10.5;
  m.hops = 2;
  Frame f{9, 1000, DataFrame{m}};
  EXPECT_EQ(f.as<DataFrame>().message.id, 42u);
  EXPECT_EQ(f.as<DataFrame>().message.hops, 2);
}

TEST(Message, EqualityById) {
  Message a;
  a.id = 1;
  a.source = 2;
  Message b = a;
  b.hops = 5;  // hop count does not affect identity
  EXPECT_TRUE(a == b);
  b.id = 2;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace dftmsn
