#include "common/config_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace dftmsn {
namespace {

TEST(ConfigIo, AppliesDoubleIntBoolAndPolicy) {
  Config c;
  apply_config_override(c, "scenario.field_m=300.5");
  apply_config_override(c, "scenario.num_sinks=7");
  apply_config_override(c, "sleep.enabled=false");
  apply_config_override(c, "protocol.queue_policy=fifo");
  EXPECT_DOUBLE_EQ(c.scenario.field_m, 300.5);
  EXPECT_EQ(c.scenario.num_sinks, 7);
  EXPECT_FALSE(c.sleep.enabled);
  EXPECT_EQ(c.protocol.queue_policy, QueuePolicy::kFifo);
}

TEST(ConfigIo, TrimsWhitespace) {
  Config c;
  apply_config_override(c, "  scenario.num_sensors =  42 ");
  EXPECT_EQ(c.scenario.num_sensors, 42);
}

TEST(ConfigIo, UnknownKeyThrows) {
  Config c;
  EXPECT_THROW(apply_config_override(c, "scenario.num_snks=3"),
               std::invalid_argument);
  EXPECT_THROW(apply_config_override(c, "bogus=1"), std::invalid_argument);
}

TEST(ConfigIo, MalformedValueThrows) {
  Config c;
  EXPECT_THROW(apply_config_override(c, "scenario.field_m=abc"),
               std::invalid_argument);
  EXPECT_THROW(apply_config_override(c, "scenario.num_sinks=3.5"),
               std::invalid_argument);
  EXPECT_THROW(apply_config_override(c, "sleep.enabled=maybe"),
               std::invalid_argument);
  EXPECT_THROW(apply_config_override(c, "protocol.queue_policy=lifo"),
               std::invalid_argument);
  EXPECT_THROW(apply_config_override(c, "no-equals-sign"),
               std::invalid_argument);
}

TEST(ConfigIo, AppliesListInOrder) {
  Config c;
  apply_config_overrides(c, {"scenario.seed=9", "scenario.seed=11"});
  EXPECT_EQ(c.scenario.seed, 11u);
}

TEST(ConfigIo, LoadsFileWithCommentsAndBlanks) {
  const std::string path = "config_io_test_tmp.cfg";
  {
    std::ofstream out(path);
    out << "# scenario tweaks\n"
        << "\n"
        << "scenario.num_sinks = 4   # four collection points\n"
        << "protocol.alpha=0.5\n";
  }
  Config c;
  load_config_file(c, path);
  std::remove(path.c_str());
  EXPECT_EQ(c.scenario.num_sinks, 4);
  EXPECT_DOUBLE_EQ(c.protocol.alpha, 0.5);
}

TEST(ConfigIo, FileErrorsCarryLineNumbers) {
  const std::string path = "config_io_test_bad.cfg";
  {
    std::ofstream out(path);
    out << "scenario.num_sinks=4\n"
        << "typo.key=1\n";
  }
  Config c;
  try {
    load_config_file(c, path);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos);
  }
  std::remove(path.c_str());
  EXPECT_THROW(load_config_file(c, "missing-file.cfg"), std::runtime_error);
}

TEST(ConfigIo, ListCoversRoundTrip) {
  // Every listed key must be re-appliable with its printed value.
  Config c;
  for (const std::string& kv : list_config_keys(c)) {
    Config fresh;
    EXPECT_NO_THROW(apply_config_override(fresh, kv)) << kv;
  }
  EXPECT_GT(list_config_keys(c).size(), 40u);
}

TEST(ConfigIo, RoundTripPreservesValues) {
  Config a;
  a.scenario.field_m = 512.0;
  a.protocol.queue_policy = QueuePolicy::kRandomDrop;
  a.sleep.enabled = false;
  Config b;
  for (const std::string& kv : list_config_keys(a))
    apply_config_override(b, kv);
  EXPECT_DOUBLE_EQ(b.scenario.field_m, 512.0);
  EXPECT_EQ(b.protocol.queue_policy, QueuePolicy::kRandomDrop);
  EXPECT_FALSE(b.sleep.enabled);
}

TEST(ConfigIo, BadNumberErrorsNameKeyAndToken) {
  Config c;
  try {
    apply_config_override(c, "scenario.field_m=12abc");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("scenario.field_m"), std::string::npos) << what;
    EXPECT_NE(what.find("12abc"), std::string::npos) << what;
  }
  try {
    apply_config_override(c, "scenario.num_sinks=");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("scenario.num_sinks"),
              std::string::npos)
        << e.what();
  }
}

TEST(ConfigIo, RejectsNonFiniteValues) {
  // NaN would otherwise slip through every validate() range check.
  Config c;
  EXPECT_THROW(apply_config_override(c, "scenario.field_m=nan"),
               std::invalid_argument);
  EXPECT_THROW(apply_config_override(c, "protocol.alpha=inf"),
               std::invalid_argument);
  EXPECT_THROW(apply_config_override(c, "scenario.duration_s=-inf"),
               std::invalid_argument);
}

TEST(ConfigIo, ParsesMobilityKind) {
  Config c;
  apply_config_override(c, "scenario.mobility=waypoint");
  EXPECT_EQ(c.scenario.mobility, MobilityKind::kWaypoint);
  apply_config_override(c, "scenario.mobility=patrol");
  EXPECT_EQ(c.scenario.mobility, MobilityKind::kPatrol);
  apply_config_override(c, "scenario.mobility=zone");
  EXPECT_EQ(c.scenario.mobility, MobilityKind::kZone);
  apply_config_override(c, "scenario.mobility=trace");
  EXPECT_EQ(c.scenario.mobility, MobilityKind::kTrace);
  EXPECT_EQ(mobility_kind_name(MobilityKind::kTrace),
            std::string("trace"));
  EXPECT_THROW(apply_config_override(c, "scenario.mobility=brownian"),
               std::invalid_argument);
}

TEST(ConfigIo, TraceKindNeedsAReadableTraceFileAtLoadTime) {
  // mobility=trace without a trace path fails validation; with a path to
  // a file that does not exist, load_config_file fails fast naming the
  // missing file — not later, deep inside World construction.
  Config c;
  c.scenario.mobility = MobilityKind::kTrace;
  EXPECT_THROW(c.validate(), std::invalid_argument);

  const std::string path = "config_io_test_trace.cfg";
  {
    std::ofstream out(path);
    out << "scenario.mobility=trace\n"
        << "scenario.trace_path=no_such_dir/missing.trc\n";
  }
  Config loaded;
  try {
    load_config_file(loaded, path);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no_such_dir/missing.trc"), std::string::npos)
        << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(ConfigIo, LoadValidatesTheFinishedConfig) {
  // A file whose lines each parse but whose combination is nonsense must
  // be rejected at load time, with the file named.
  const std::string path = "config_io_test_invalid.cfg";
  {
    std::ofstream out(path);
    out << "scenario.speed_min_mps=5\n"
        << "scenario.speed_max_mps=1\n";  // max < min
  }
  Config c;
  try {
    load_config_file(c, path);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(ConfigIo, ValidateRejectsStalledWaypoint) {
  Config c;
  c.scenario.mobility = MobilityKind::kWaypoint;
  c.scenario.speed_min_mps = 0.0;  // RWP with v_min=0 stalls nodes forever
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.scenario.speed_min_mps = 0.5;
  EXPECT_NO_THROW(c.validate());
}

}  // namespace
}  // namespace dftmsn
