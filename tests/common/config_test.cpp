#include "common/config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dftmsn {
namespace {

TEST(Config, DefaultsAreValid) {
  Config c;
  EXPECT_NO_THROW(c.validate());
}

TEST(Config, PaperDefaults) {
  // Sec. 5 of the paper: sanity-pin the headline scenario numbers.
  Config c;
  EXPECT_EQ(c.scenario.num_sensors, 100);
  EXPECT_EQ(c.scenario.num_sinks, 3);
  EXPECT_EQ(c.scenario.zones_per_side, 5);
  EXPECT_DOUBLE_EQ(c.scenario.speed_max_mps, 5.0);
  EXPECT_DOUBLE_EQ(c.scenario.zone_exit_prob, 0.2);
  EXPECT_DOUBLE_EQ(c.scenario.data_interval_s, 120.0);
  EXPECT_DOUBLE_EQ(c.scenario.duration_s, 25'000.0);
  EXPECT_EQ(c.protocol.queue_capacity, 200u);
  EXPECT_EQ(c.radio.data_bits, 1000u);
  EXPECT_EQ(c.radio.control_bits, 50u);
  EXPECT_DOUBLE_EQ(c.radio.bandwidth_bps, 10'000.0);
  EXPECT_DOUBLE_EQ(c.radio.range_m, 10.0);
}

TEST(Config, DerivedRadioTimes) {
  RadioConfig r;
  EXPECT_DOUBLE_EQ(r.data_tx_time(), 0.1);      // 1000 b / 10 kbps
  EXPECT_DOUBLE_EQ(r.control_tx_time(), 0.005); // 50 b / 10 kbps
}

TEST(Config, RejectsBadRadio) {
  Config c;
  c.radio.range_m = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = Config{};
  c.radio.bandwidth_bps = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Config, RejectsBadPower) {
  Config c;
  c.power.idle_w = c.power.sleep_w;  // no savings possible
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Config, RejectsBadProtocol) {
  Config c;
  c.protocol.alpha = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = Config{};
  c.protocol.delivery_threshold_r = 1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = Config{};
  c.protocol.queue_capacity = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = Config{};
  c.protocol.max_retry_gap_slots = 1;  // below the base gap
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = Config{};
  c.protocol.lone_retry_s = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Config, RejectsBadSleep) {
  Config c;
  c.sleep.history_cycles = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = Config{};
  c.sleep.buffer_threshold_h = 1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Config, RejectsBadContention) {
  Config c;
  c.contention.tau_max_slots = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = Config{};
  c.contention.cts_window_cap = 1;  // below initial W
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Config, RejectsBadScenario) {
  Config c;
  c.scenario.num_sensors = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = Config{};
  c.scenario.num_sinks = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = Config{};
  c.scenario.speed_max_mps = -1.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = Config{};
  c.scenario.warmup_s = c.scenario.duration_s;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = Config{};
  c.scenario.zone_exit_prob = 1.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace dftmsn
