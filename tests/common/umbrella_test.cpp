// Compile-level check: the umbrella header is self-contained and exposes
// the advertised API surface.
#include "dftmsn.hpp"

#include <gtest/gtest.h>

namespace dftmsn {
namespace {

TEST(Umbrella, HighLevelApiIsUsable) {
  Config config;
  config.scenario.num_sensors = 5;
  config.scenario.num_sinks = 1;
  config.scenario.duration_s = 50.0;
  const RunResult r = run_once(config, ProtocolKind::kDirect);
  EXPECT_LE(r.delivered, r.generated);
}

TEST(Umbrella, BuildingBlocksAreVisible) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_NO_THROW(PatrolMobility({{0, 0}, {1, 0}}, 1.0));
  EXPECT_GT(direct_delivery_ratio(1e-3, 1000.0), 0.0);
}

}  // namespace
}  // namespace dftmsn
