#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dftmsn {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i)
      pool.submit([&] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.submit([&] { count.fetch_add(1); });
  }  // no wait_idle: the destructor must still run everything
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  ThreadPool pool2(-3);
  EXPECT_EQ(pool2.size(), 1);
}

TEST(ThreadPoolTest, WaitIdleRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after an exception was consumed.
  std::atomic<int> count{0};
  pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  for (int jobs : {1, 2, 4, 13}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(hits.size(), jobs,
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
  }
}

TEST(ParallelForTest, SerialAndParallelProduceIdenticalSlots) {
  const std::size_t n = 64;
  std::vector<double> serial(n), parallel(n);
  const auto body = [](std::size_t i) {
    double x = static_cast<double>(i) + 1.0;
    for (int k = 0; k < 100; ++k) x = x * 1.0000001 + 0.5;
    return x;
  };
  parallel_for(n, 1, [&](std::size_t i) { serial[i] = body(i); });
  parallel_for(n, 8, [&](std::size_t i) { parallel[i] = body(i); });
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(serial[i], parallel[i]) << i;  // bit-identical, not just near
}

TEST(ParallelForTest, EmptyAndSingleElementRanges) {
  int calls = 0;
  parallel_for(0, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, 8, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 0u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, PropagatesBodyException) {
  EXPECT_THROW(parallel_for(16, 4,
                            [](std::size_t i) {
                              if (i == 7) throw std::runtime_error("bad");
                            }),
               std::runtime_error);
}

TEST(JobResolutionTest, AutoAndExplicit) {
  EXPECT_GE(hardware_jobs(), 1);
  EXPECT_EQ(resolve_jobs(0), hardware_jobs());
  EXPECT_EQ(resolve_jobs(-1), hardware_jobs());
  EXPECT_EQ(resolve_jobs(3), 3);
}

}  // namespace
}  // namespace dftmsn
