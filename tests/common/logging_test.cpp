#include "common/logging.hpp"

#include <gtest/gtest.h>

namespace dftmsn {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

TEST_F(LoggingTest, DefaultLevelIsWarn) {
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST_F(LoggingTest, SetAndGetLevel) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, EmitBelowThresholdIsCheap) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return std::string("x");
  };
  // log() short-circuits before formatting when the level is filtered.
  log(LogLevel::kDebug, expensive());
  EXPECT_EQ(evaluations, 1);  // arguments evaluate (no macro magic)...
  testing::internal::CaptureStderr();
  log(LogLevel::kDebug, "hidden");
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, EmitsAtOrAboveThreshold) {
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  log(LogLevel::kInfo, "count=", 42, " ratio=", 0.5);
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("count=42 ratio=0.5"), std::string::npos);
  EXPECT_NE(out.find("INFO"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  log(LogLevel::kError, "nope");
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace dftmsn
