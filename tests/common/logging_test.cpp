#include "common/logging.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace dftmsn {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

TEST_F(LoggingTest, DefaultLevelIsWarn) {
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST_F(LoggingTest, SetAndGetLevel) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(log_level(), LogLevel::kOff);
}

TEST_F(LoggingTest, EmitBelowThresholdIsCheap) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return std::string("x");
  };
  // log() short-circuits before formatting when the level is filtered.
  log(LogLevel::kDebug, expensive());
  EXPECT_EQ(evaluations, 1);  // arguments evaluate (no macro magic)...
  testing::internal::CaptureStderr();
  log(LogLevel::kDebug, "hidden");
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, EmitsAtOrAboveThreshold) {
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  log(LogLevel::kInfo, "count=", 42, " ratio=", 0.5);
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("count=42 ratio=0.5"), std::string::npos);
  EXPECT_NE(out.find("INFO"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  log(LogLevel::kError, "nope");
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, ConcurrentEmittersNeverInterleaveLines) {
  // The parallel experiment engine logs from several Worlds at once;
  // every emitted line must come out whole, and every message must
  // arrive exactly once.
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  constexpr int kThreads = 8;
  constexpr int kLines = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i)
        log(LogLevel::kInfo, "thread=", t, " line=", i, " end");
    });
  }
  for (std::thread& t : threads) t.join();
  const std::string out = testing::internal::GetCapturedStderr();

  int complete_lines = 0;
  std::size_t pos = 0;
  while ((pos = out.find('\n', pos)) != std::string::npos) {
    ++complete_lines;
    ++pos;
  }
  EXPECT_EQ(complete_lines, kThreads * kLines);
  // Every line is well-formed: prefix present, terminator present.
  std::size_t prefix_count = 0;
  for (pos = 0; (pos = out.find("[dftmsn:INFO] thread=", pos)) !=
                std::string::npos;
       ++prefix_count, ++pos) {
  }
  EXPECT_EQ(prefix_count, static_cast<std::size_t>(kThreads * kLines));
  // Spot-check that each thread's full set of payloads arrived.
  for (int t = 0; t < kThreads; ++t) {
    for (int i : {0, kLines - 1}) {
      const std::string needle = "thread=" + std::to_string(t) +
                                 " line=" + std::to_string(i) + " end\n";
      EXPECT_NE(out.find(needle), std::string::npos) << needle;
    }
  }
}

TEST_F(LoggingTest, LevelIsSafeToReadConcurrently) {
  // set/get from several threads must be data-race-free (atomic level).
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 1000; ++i) {
        set_log_level(t % 2 == 0 ? LogLevel::kWarn : LogLevel::kError);
        (void)log_level();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const LogLevel final_level = log_level();
  EXPECT_TRUE(final_level == LogLevel::kWarn ||
              final_level == LogLevel::kError);
}

}  // namespace
}  // namespace dftmsn
