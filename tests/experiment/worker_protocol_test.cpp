// Worker protocol: bit-exact request/result round-trips through the
// sealed container files, the table of waitpid-status -> supervisor
// decisions, and the cross-process shared progress counter.
#include "experiment/worker_protocol.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstring>

#include "common/config_io.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn {
namespace {

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Linux wait-status encoding (what waitpid writes): a normal exit is
// code << 8, a signal death is the raw signal number.
int exited(int code) { return code << 8; }
int signaled(int sig) { return sig; }

TEST(WorkerProtocol, RequestRoundTripsConfigBitExactly) {
  WorkerRequest req;
  // Doubles that do NOT survive the 6-significant-digit textual config
  // form — the whole reason the exact codec exists.
  req.config.protocol.alpha = 0.1 + 0.2;  // 0.30000000000000004
  req.config.scenario.duration_s = 1234.5678901234567;
  req.config.scenario.seed = 0xdeadbeefcafeull;
  req.config.faults.plan = "segv@300:attempts=1";
  req.kind = ProtocolKind::kDirect;
  req.attempt = 3;
  req.checkpoint_path = "ck/spec_7.ckpt";
  req.checkpoint_every_s = 250.25;
  req.verify_on_resume = false;
  req.result_path = "scratch/spec_7.result";
  req.progress_path = "scratch/spec_7.progress";

  const WorkerRequest got =
      decode_worker_request(encode_worker_request(req));
  EXPECT_TRUE(same_bits(got.config.protocol.alpha, req.config.protocol.alpha));
  EXPECT_TRUE(same_bits(got.config.scenario.duration_s,
                        req.config.scenario.duration_s));
  EXPECT_EQ(got.config.scenario.seed, req.config.scenario.seed);
  EXPECT_EQ(got.config.faults.plan, req.config.faults.plan);
  EXPECT_EQ(got.kind, req.kind);
  EXPECT_EQ(got.attempt, req.attempt);
  EXPECT_EQ(got.checkpoint_path, req.checkpoint_path);
  EXPECT_TRUE(same_bits(got.checkpoint_every_s, req.checkpoint_every_s));
  EXPECT_FALSE(got.verify_on_resume);
  EXPECT_EQ(got.result_path, req.result_path);
  EXPECT_EQ(got.progress_path, req.progress_path);
}

TEST(WorkerProtocol, OkResultRoundTripsWithRegistry) {
  WorkerResult res;
  res.ok = true;
  res.result.delivery_ratio = 0.1 + 0.2;
  res.result.generated = 41;
  res.result.delivered = 12;
  res.result.events_executed = 987654;
  res.checkpoints_written = 5;
  res.registry.counter("mac.rts_sent")->inc(17);
  res.registry.gauge("queue.peak_fill")->set(0.75);
  res.registry.histogram("delay", 0.0, 100.0, 4)->observe(12.5);

  const WorkerResult got = decode_worker_result(encode_worker_result(res));
  EXPECT_TRUE(got.ok);
  EXPECT_TRUE(got.error.empty());
  EXPECT_TRUE(same_bits(got.result.delivery_ratio, res.result.delivery_ratio));
  EXPECT_EQ(got.result.generated, 41u);
  EXPECT_EQ(got.result.delivered, 12u);
  EXPECT_EQ(got.result.events_executed, 987654u);
  EXPECT_EQ(got.checkpoints_written, 5u);
  EXPECT_EQ(got.registry.serialize(), res.registry.serialize());
}

TEST(WorkerProtocol, ErrorResultRoundTrips) {
  WorkerResult res;
  res.ok = false;
  res.error = "simulated crash at t=300";
  res.checkpoints_written = 2;

  const WorkerResult got = decode_worker_result(encode_worker_result(res));
  EXPECT_FALSE(got.ok);
  EXPECT_EQ(got.error, "simulated crash at t=300");
  EXPECT_EQ(got.checkpoints_written, 2u);
  EXPECT_TRUE(got.registry.empty());
}

TEST(WorkerProtocol, CorruptImagesAreRejected) {
  WorkerResult res;
  res.ok = true;
  std::vector<std::uint8_t> image = encode_worker_result(res);

  // Every single-byte flip must fail the digest (or, for trailing-digest
  // bytes, the magic/digest pair) — spot-check a spread of positions.
  for (const std::size_t at :
       {std::size_t{0}, std::size_t{3}, image.size() / 2, image.size() - 1}) {
    std::vector<std::uint8_t> bad = image;
    bad[at] ^= 0x40;
    EXPECT_THROW(decode_worker_result(bad), snapshot::SnapshotError) << at;
  }
  // Truncation.
  std::vector<std::uint8_t> shorter(image.begin(), image.end() - 9);
  EXPECT_THROW(decode_worker_result(shorter), snapshot::SnapshotError);
  // A request is not a result (foreign magic).
  EXPECT_THROW(decode_worker_request(image), snapshot::SnapshotError);
}

TEST(WorkerProtocol, DecodeWorkerExitTable) {
  struct Case {
    const char* name;
    int status;
    WorkerFileState file;
    const char* reported;
    bool accept;
    const char* detail_contains;  ///< nullptr: detail must be empty
  };
  const Case cases[] = {
      {"clean exit + ok result", exited(0), WorkerFileState::kOk, "", true,
       nullptr},
      {"clean exit, no result file", exited(0), WorkerFileState::kMissing, "",
       false, "no result file"},
      {"clean exit, torn result file", exited(0), WorkerFileState::kCorrupt,
       "", false, "corrupt"},
      {"clean exit, error result", exited(0), WorkerFileState::kError,
       "invariant I3 violated", false, "invariant I3 violated"},
      {"run-failed exit with structured error", exited(kWorkerExitRunFailed),
       WorkerFileState::kError, "simulated crash at t=300", false,
       "simulated crash at t=300"},
      {"bad-request exit, nothing written", exited(kWorkerExitBadRequest),
       WorkerFileState::kMissing, "", false, "worker exit code 2"},
      {"segfault", signaled(SIGSEGV), WorkerFileState::kMissing, "", false,
       "worker killed by SIGSEGV"},
      {"abort", signaled(SIGABRT), WorkerFileState::kMissing, "", false,
       "worker killed by SIGABRT"},
      {"watchdog/oom kill", signaled(SIGKILL), WorkerFileState::kMissing, "",
       false, "worker killed by SIGKILL"},
      {"unnamed signal", signaled(35), WorkerFileState::kMissing, "", false,
       "worker killed by signal 35"},
      // A signal death outranks whatever half-result made it to disk: the
      // file may predate the kill.
      {"signal death with stale ok file", signaled(SIGKILL),
       WorkerFileState::kOk, "", false, "worker killed by SIGKILL"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const WorkerExitDecision d =
        decode_worker_exit(c.status, c.file, c.reported);
    EXPECT_EQ(d.accept, c.accept);
    if (c.detail_contains == nullptr) {
      EXPECT_TRUE(d.detail.empty()) << d.detail;
    } else {
      EXPECT_NE(d.detail.find(c.detail_contains), std::string::npos)
          << d.detail;
    }
  }
}

TEST(WorkerProtocol, SignalNames) {
  EXPECT_EQ(worker_signal_name(SIGSEGV), "SIGSEGV");
  EXPECT_EQ(worker_signal_name(SIGBUS), "SIGBUS");
  EXPECT_EQ(worker_signal_name(SIGABRT), "SIGABRT");
  EXPECT_EQ(worker_signal_name(SIGKILL), "SIGKILL");
  EXPECT_EQ(worker_signal_name(SIGTERM), "SIGTERM");
  EXPECT_EQ(worker_signal_name(42), "signal 42");
}

TEST(WorkerProtocol, SharedProgressIsVisibleAcrossMappings) {
  const std::string path = "worker_protocol_progress.tmp";
  {
    SharedProgress parent = SharedProgress::create(path);
    EXPECT_EQ(parent.counter()->load(), 0u);  // create() zeroes

    // Second mapping of the same file — what the worker process does.
    SharedProgress child = SharedProgress::open(path);
    child.counter()->store(12345);
    EXPECT_EQ(parent.counter()->load(), 12345u);
    parent.counter()->store(0);
    EXPECT_EQ(child.counter()->load(), 0u);

    // A fresh create() resets a leftover file.
    child.counter()->store(99);
    SharedProgress again = SharedProgress::create(path);
    EXPECT_EQ(again.counter()->load(), 0u);
  }
  std::remove(path.c_str());
  EXPECT_THROW(SharedProgress::open(path), std::runtime_error);
}

TEST(WorkerProtocol, SharedProgressV2FieldsRoundTrip) {
  const std::string path = "worker_protocol_progress_v2.tmp";
  {
    SharedProgress parent = SharedProgress::create(path);
    EXPECT_TRUE(same_bits(parent.load_sim_time(), 0.0));
    EXPECT_EQ(parent.checkpoint_seq()->load(), 0u);

    SharedProgress child = SharedProgress::open(path);
    child.store_sim_time(1234.5625);  // exact in binary
    child.checkpoint_seq()->store(7);
    EXPECT_TRUE(same_bits(parent.load_sim_time(), 1234.5625));
    EXPECT_EQ(parent.checkpoint_seq()->load(), 7u);

    // The sim-time channel is raw IEEE bits: NaN and -0.0 survive too.
    child.store_sim_time(-0.0);
    EXPECT_TRUE(same_bits(parent.load_sim_time(), -0.0));

    // create() wipes every v2 field, not just the event counter.
    SharedProgress again = SharedProgress::create(path);
    EXPECT_TRUE(same_bits(again.load_sim_time(), 0.0));
    EXPECT_EQ(again.checkpoint_seq()->load(), 0u);
  }
  std::remove(path.c_str());
}

TEST(WorkerProtocol, SharedProgressRejectsForeignHeaders) {
  const std::string path = "worker_protocol_progress_bad.tmp";
  const auto write_raw = [&](const std::string& bytes) {
    std::remove(path.c_str());
    snapshot::write_file_atomic(
        path, std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
  };
  const auto expect_open_fails = [&](const char* needle) {
    try {
      SharedProgress sp = SharedProgress::open(path);
      FAIL() << "open() accepted a corrupt progress file";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };

  // Truncated: a v1-sized 8-byte counter-only file.
  write_raw(std::string(8, '\0'));
  expect_open_fails("a v2 block is 32");

  // Right size, wrong magic.
  write_raw(std::string(32, '\0'));
  expect_open_fails("magic");

  // Right magic ("DPRG" little-endian), future version 3.
  std::string hdr = "DPRG";
  hdr += '\x03';
  hdr += std::string(27, '\0');
  write_raw(hdr);
  expect_open_fails("version 3");

  std::remove(path.c_str());
}

}  // namespace
}  // namespace dftmsn
