// Golden-metrics regression pin: the paper-preset headline numbers at a
// fixed seed, recorded once and asserted exactly ever since. A failure
// here does not necessarily mean "wrong" — it means the reproduction
// DRIFTED: some change altered simulated behavior (event order, RNG
// consumption, FP reduction order) and the committed baselines in
// EXPERIMENTS.md no longer describe what the code computes. Update the
// constants only after deliberately re-validating the figures.
//
// Integer counters are pinned exactly. Derived doubles are pinned to a
// 1e-12 relative tolerance so an IEEE-conformant compiler change cannot
// fire it spuriously while any behavioral change still will.
#include <gtest/gtest.h>

#include <cmath>

#include "experiment/presets.hpp"
#include "experiment/runner.hpp"

namespace dftmsn {
namespace {

constexpr double kRelTol = 1e-12;

void expect_rel(double actual, double golden, const char* what) {
  EXPECT_NEAR(actual, golden, std::abs(golden) * kRelTol + 1e-15) << what;
}

TEST(GoldenMetrics, PaperPresetOptSeed42) {
  Config c = *scenario_preset("paper");
  c.scenario.seed = 42;
  const RunResult r = run_once(c, ProtocolKind::kOpt);

  // --- golden values: paper preset (100 sensors, 3 sinks, 25 000 s),
  // --- OPT protocol, seed 42. Recorded 2026-08-06.
  EXPECT_EQ(r.generated, 20568u);
  EXPECT_EQ(r.delivered, 19993u);
  EXPECT_EQ(r.collisions, 19127u);
  EXPECT_EQ(r.attempts, 952107u);
  EXPECT_EQ(r.failed_attempts, 718951u);
  EXPECT_EQ(r.data_transmissions, 145389u);
  EXPECT_EQ(r.drops_overflow, 3165u);
  EXPECT_EQ(r.drops_threshold, 12682u);
  EXPECT_EQ(r.events_executed, 7875106u);

  expect_rel(r.delivery_ratio, 0.97204395176973946, "delivery_ratio");
  expect_rel(r.mean_power_mw, 0.97632643777041572, "mean_power_mw");
  expect_rel(r.mean_delay_s, 692.7272015138617, "mean_delay_s");
  expect_rel(r.mean_hops, 1.7616165657980294, "mean_hops");
  expect_rel(r.overhead_bits_per_delivery, 12324.283499224728,
             "overhead_bits_per_delivery");
}

TEST(GoldenMetrics, PaperPresetZbrSeed42) {
  // A second pin on the comparison protocol guards the baselines the
  // paper's relative claims are judged against.
  Config c = *scenario_preset("paper");
  c.scenario.seed = 42;
  const RunResult r = run_once(c, ProtocolKind::kZbr);

  EXPECT_EQ(r.generated, 20568u);
  EXPECT_EQ(r.delivered, 12113u);
  EXPECT_EQ(r.collisions, 50835u);
  EXPECT_EQ(r.drops_overflow, 7620u);
  EXPECT_EQ(r.events_executed, 13490703u);
  expect_rel(r.delivery_ratio, 0.58892454297938546, "delivery_ratio");
  expect_rel(r.mean_power_mw, 2.1700894715471262, "mean_power_mw");
  expect_rel(r.mean_delay_s, 1906.7015932557945, "mean_delay_s");
  expect_rel(r.overhead_bits_per_delivery, 30173.499545942377,
             "overhead_bits_per_delivery");
}

}  // namespace
}  // namespace dftmsn
