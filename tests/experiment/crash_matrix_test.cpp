// The crash-point matrix: for every injectable I/O op, crash the real
// CLI binary (_exit(9), no unwinding — honest power loss) at the 1st,
// 2nd, ... Nth occurrence of that op until a run completes without the
// fault firing, i.e. every boundary the sweep ever crosses has been hit.
// After each crash: --fsck must classify/repair without reporting
// unrepairable damage, and --resume must finish the sweep to a manifest
// whose durable content (status + config digest + bit-exact results) is
// identical to an uninterrupted run's. Runs at --jobs 1 and --jobs 4 —
// the acceptance gate for the durability layer.
#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "snapshot/io_env.hpp"

namespace dftmsn {
namespace {

namespace fs = std::filesystem;

constexpr const char* kCli = DFTMSN_CLI_PATH;
// More occurrences than the mini-sweep ever performs of any one op; the
// matrix must exhaust each op (observe a fault that no longer fires)
// before this, or the test fails as "matrix never terminated".
constexpr int kMaxOccurrence = 120;

int run_cmd(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  if (status < 0) return -1;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return 128 + (WIFSIGNALED(status) ? WTERMSIG(status) : 0);
}

std::string sweep_cmd(const std::string& dir, int jobs,
                      const std::string& faults, bool resume) {
  std::ostringstream cmd;
  if (!faults.empty()) cmd << "DFTMSN_IO_FAULTS='" << faults << "' ";
  cmd << '"' << kCli << '"'
      << " --protocol DIRECT --reps 2 --jobs " << jobs
      << " --checkpoint-dir " << dir << " --checkpoint-every 40"
      << (resume ? " --resume" : "")
      << " scenario.num_sensors=6 scenario.num_sinks=1"
      << " scenario.duration_s=160 > " << dir << "/out.log 2>&1";
  return cmd.str();
}

/// The durable content of a manifest: status, config digest and the
/// bit-exact result/registry lines. Bookkeeping that legitimately
/// differs between an interrupted-and-resumed sweep and a straight one
/// (retry/checkpoint counters, the whole-file digest over them) is
/// stripped; everything else must match byte for byte.
std::string canonical_manifest(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing manifest: " << path;
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("digest ", 0) == 0) continue;  // whole-file seal
    if (line.rfind("spec ", 0) == 0) {
      std::istringstream is(line);
      std::string tok;
      while (is >> tok) {
        if (tok.rfind("retries=", 0) == 0) continue;
        if (tok.rfind("checkpoints=", 0) == 0) continue;
        out << tok << ' ';
      }
      out << '\n';
      continue;
    }
    out << line << '\n';
  }
  return out.str();
}

void run_matrix(int jobs) {
  const std::string base =
      "crash_matrix_j" + std::to_string(jobs) + ".tmp";
  fs::remove_all(base);
  fs::create_directories(base);

  // Uninterrupted reference.
  const std::string ref_dir = base + "/ref";
  fs::create_directories(ref_dir);
  ASSERT_EQ(run_cmd(sweep_cmd(ref_dir, jobs, "", false)), 0);
  const std::string ref = canonical_manifest(ref_dir + "/manifest.txt");
  ASSERT_FALSE(ref.empty());

  for (const char* op : {"open", "write", "fsync", "rename", "fsyncdir"}) {
    bool exhausted = false;
    for (int nth = 1; nth <= kMaxOccurrence; ++nth) {
      const std::string dir =
          base + "/" + op + "_" + std::to_string(nth);
      fs::create_directories(dir);
      const std::string fault =
          "crash@" + std::string(op) + "#" + std::to_string(nth);

      const int rc = run_cmd(sweep_cmd(dir, jobs, fault, false));
      if (rc == 0) {
        // The sweep performed fewer than nth of this op: every boundary
        // of this kind has been crashed at. The very first occurrence
        // must exist, though — all five ops are part of the protocol.
        EXPECT_GT(nth, 1) << op << " was never performed at all";
        exhausted = true;
        fs::remove_all(dir);
        break;
      }
      ASSERT_EQ(rc, snapshot::kInjectedCrashExit)
          << fault << " at --jobs " << jobs
          << ": expected the scripted crash, got exit " << rc;

      // Recovery: fsck may find a torn tail / leftover .tmp (7) or
      // nothing at all (0); unrepairable damage (2) is a durability bug.
      const int fsck_rc = run_cmd('"' + std::string(kCli) + "\" --fsck " +
                                  dir + " >> " + dir + "/out.log 2>&1");
      ASSERT_TRUE(fsck_rc == 0 || fsck_rc == 7)
          << fault << " at --jobs " << jobs << ": fsck exit " << fsck_rc;

      ASSERT_EQ(run_cmd(sweep_cmd(dir, jobs, "", true)), 0)
          << fault << " at --jobs " << jobs << ": resume failed";
      EXPECT_EQ(canonical_manifest(dir + "/manifest.txt"), ref)
          << fault << " at --jobs " << jobs
          << ": resumed sweep diverged from the uninterrupted run";
      fs::remove_all(dir);
    }
    EXPECT_TRUE(exhausted)
        << op << " matrix did not terminate within " << kMaxOccurrence
        << " occurrences at --jobs " << jobs;
  }
  fs::remove_all(base);
}

TEST(CrashMatrix, EveryBoundaryRecoversJobs1) { run_matrix(1); }

TEST(CrashMatrix, EveryBoundaryRecoversJobs4) { run_matrix(4); }

}  // namespace
}  // namespace dftmsn
