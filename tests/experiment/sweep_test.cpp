#include "experiment/sweep.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dftmsn {
namespace {

TEST(ConsoleTable, HeaderAndRows) {
  std::ostringstream os;
  ConsoleTable t(os, {"a", "bb"}, 6);
  t.row({std::vector<std::string>{"x", "y"}});
  const std::string out = os.str();
  EXPECT_NE(out.find("     a"), std::string::npos);
  EXPECT_NE(out.find("    bb"), std::string::npos);
  EXPECT_NE(out.find("     x"), std::string::npos);
}

TEST(ConsoleTable, NumericRowsUsePrecision) {
  std::ostringstream os;
  ConsoleTable t(os, {"v"}, 10);
  t.row(std::vector<double>{3.14159}, 2);
  EXPECT_NE(os.str().find("3.14"), std::string::npos);
  EXPECT_EQ(os.str().find("3.142"), std::string::npos);
}

TEST(ConsoleTable, ArityMismatchThrows) {
  std::ostringstream os;
  ConsoleTable t(os, {"a", "b"});
  EXPECT_THROW(t.row({std::vector<std::string>{"only-one"}}),
               std::invalid_argument);
}

TEST(ConsoleTable, EmptyColumnsThrow) {
  std::ostringstream os;
  EXPECT_THROW(ConsoleTable(os, {}), std::invalid_argument);
}

TEST(ConsoleTable, FormatHelper) {
  EXPECT_EQ(ConsoleTable::format(2.4, 0), "2");
  EXPECT_EQ(ConsoleTable::format(3.14159, 2), "3.14");
  EXPECT_EQ(ConsoleTable::format(-1.0, 1), "-1.0");
}

TEST(PrintBanner, ContainsIdAndDescription) {
  std::ostringstream os;
  print_banner(os, "FIG-X", "what it shows");
  EXPECT_NE(os.str().find("==== FIG-X ===="), std::string::npos);
  EXPECT_NE(os.str().find("what it shows"), std::string::npos);
}

}  // namespace
}  // namespace dftmsn
