// Dispatch-plane suite (docs/distributed_sweeps.md): the wire frame
// codec (round-trips, partial prefixes, damage rejection), the lease
// machinery against real loopback sockets (expiry without progress,
// requeue, duplicate-result idempotency, heartbeat-gated extension),
// and the headline robustness contract — a dispatched sweep's manifest
// is byte-identical to an in-process run of the same specs.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/net_util.hpp"
#include "experiment/dispatch.hpp"
#include "experiment/supervisor.hpp"
#include "experiment/worker_protocol.hpp"
#include "snapshot/snapshot_io.hpp"
#include "telemetry/status.hpp"

namespace dftmsn {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& name) : path(name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

Config small_config(std::uint64_t seed) {
  Config c;
  c.scenario.num_sensors = 6;
  c.scenario.num_sinks = 1;
  c.scenario.field_m = 100.0;
  c.scenario.duration_s = 150.0;
  c.scenario.speed_max_mps = 4.0;
  c.scenario.seed = seed;
  return c;
}

std::vector<RunSpec> make_specs(int n) {
  std::vector<RunSpec> specs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    specs[static_cast<std::size_t>(i)].config =
        small_config(40 + static_cast<std::uint64_t>(i));
    specs[static_cast<std::size_t>(i)].kind = ProtocolKind::kDirect;
  }
  return specs;
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Spins until `pred` holds; fails the test (and stops spinning) after
/// `secs` of wall time so a dispatcher bug cannot hang the suite.
template <typename Pred>
void wait_for(const Pred& pred, double secs, const char* what) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(secs);
  while (!pred()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "timed out waiting for " << what;
    sleep_ms(5);
  }
}

// --- frame codec -------------------------------------------------------

TEST(DispatchFrames, RoundTripEveryType) {
  WireFrame f;

  const auto hello = encode_hello_frame("worker-a");
  ASSERT_EQ(try_extract_frame(hello.data(), hello.size(), "t", &f),
            hello.size());
  EXPECT_EQ(f.type, FrameType::kHello);
  EXPECT_EQ(f.version, kDispatchWireVersion);
  EXPECT_EQ(f.worker_name, "worker-a");

  const auto request = encode_request_frame();
  ASSERT_EQ(try_extract_frame(request.data(), request.size(), "t", &f),
            request.size());
  EXPECT_EQ(f.type, FrameType::kRequest);

  GrantItem item;
  item.spec = 5;
  item.attempt = -3;  // the i64 lane must survive negatives intact
  item.request = {1, 2, 3, 4, 5};
  GrantItem item2;
  item2.spec = 7;
  item2.attempt = 2;
  const auto grant = encode_grant_frame(9, 2.5, {item, item2});
  ASSERT_EQ(try_extract_frame(grant.data(), grant.size(), "t", &f),
            grant.size());
  EXPECT_EQ(f.type, FrameType::kGrant);
  EXPECT_EQ(f.lease_id, 9u);
  EXPECT_EQ(f.lease_secs, 2.5);
  ASSERT_EQ(f.items.size(), 2u);
  EXPECT_EQ(f.items[0].spec, 5u);
  EXPECT_EQ(f.items[0].attempt, -3);
  EXPECT_EQ(f.items[0].request, item.request);
  EXPECT_EQ(f.items[1].spec, 7u);
  EXPECT_TRUE(f.items[1].request.empty());

  for (const bool done : {false, true}) {
    const auto nowork = encode_nowork_frame(done);
    ASSERT_EQ(try_extract_frame(nowork.data(), nowork.size(), "t", &f),
              nowork.size());
    EXPECT_EQ(f.type, FrameType::kNoWork);
    EXPECT_EQ(f.done, done);
  }

  const std::vector<std::uint8_t> sealed = {9, 8, 7};
  const auto result = encode_result_frame(11, 5, 2, sealed);
  ASSERT_EQ(try_extract_frame(result.data(), result.size(), "t", &f),
            result.size());
  EXPECT_EQ(f.type, FrameType::kResult);
  EXPECT_EQ(f.lease_id, 11u);
  EXPECT_EQ(f.spec, 5u);
  EXPECT_EQ(f.attempt, 2);
  EXPECT_EQ(f.result, sealed);

  const auto hb = encode_heartbeat_frame(11, 5, 12345, 0x3ff0000000000000u);
  ASSERT_EQ(try_extract_frame(hb.data(), hb.size(), "t", &f), hb.size());
  EXPECT_EQ(f.type, FrameType::kHeartbeat);
  EXPECT_EQ(f.lease_id, 11u);
  EXPECT_EQ(f.spec, 5u);
  EXPECT_EQ(f.events, 12345u);
  EXPECT_EQ(f.sim_time_bits, 0x3ff0000000000000u);
}

TEST(DispatchFrames, EveryPartialPrefixAsksForMoreBytes) {
  GrantItem item;
  item.spec = 1;
  item.request = {42, 43, 44};
  const auto grant = encode_grant_frame(3, 1.0, {item});
  WireFrame f;
  for (std::size_t len = 0; len < grant.size(); ++len)
    EXPECT_EQ(try_extract_frame(grant.data(), len, "t", &f), 0u)
        << "prefix of " << len << " bytes";
}

TEST(DispatchFrames, ConcatenatedStreamExtractsInOrder) {
  std::vector<std::uint8_t> stream;
  for (const auto& frame :
       {encode_hello_frame("w"), encode_request_frame(),
        encode_heartbeat_frame(1, 2, 3, 4), encode_nowork_frame(true)})
    stream.insert(stream.end(), frame.begin(), frame.end());

  std::vector<FrameType> seen;
  std::size_t off = 0;
  while (off < stream.size()) {
    WireFrame f;
    const std::size_t used =
        try_extract_frame(stream.data() + off, stream.size() - off, "t", &f);
    ASSERT_GT(used, 0u);
    seen.push_back(f.type);
    off += used;
  }
  EXPECT_EQ(seen, (std::vector<FrameType>{FrameType::kHello,
                                          FrameType::kRequest,
                                          FrameType::kHeartbeat,
                                          FrameType::kNoWork}));
}

TEST(DispatchFrames, DamageIsRejectedNamingTheContext) {
  const auto good = encode_heartbeat_frame(1, 2, 3, 4);
  WireFrame f;

  const auto expect_throw = [&](std::vector<std::uint8_t> bytes,
                                const char* what) {
    try {
      try_extract_frame(bytes.data(), bytes.size(), "ctx", &f);
      ADD_FAILURE() << what << ": damage accepted";
    } catch (const std::exception& e) {
      EXPECT_NE(std::string(e.what()).find("ctx"), std::string::npos)
          << what << ": error does not name the context: " << e.what();
    }
  };

  auto bad_magic = good;
  bad_magic[0] ^= 0xff;
  expect_throw(bad_magic, "bad magic");

  auto bad_type = good;
  bad_type[4] = 77;
  expect_throw(bad_type, "unknown type");

  auto huge_len = good;
  huge_len[5] = 0xff;  // length field little-endian low byte
  huge_len[6] = 0xff;
  huge_len[7] = 0xff;
  huge_len[8] = 0xff;  // ~4 GiB: over the cap, rejected before allocating
  expect_throw(huge_len, "oversized length");

  auto bad_digest = good;
  bad_digest.back() ^= 0x01;
  expect_throw(bad_digest, "digest flip");

  auto torn_payload = good;
  torn_payload[kDispatchFrameHeader] ^= 0xa5;
  expect_throw(torn_payload, "payload flip");
}

// --- lease machinery over real sockets ---------------------------------

/// Minimal raw-socket worker stub: speaks just enough of the protocol to
/// act out misbehaviour the real worker never exhibits.
struct Stub {
  int fd = -1;
  std::vector<std::uint8_t> buf;

  explicit Stub(int port) { fd = net::connect_tcp("127.0.0.1", port); }
  ~Stub() {
    if (fd >= 0) ::close(fd);
  }

  void send(const std::vector<std::uint8_t>& bytes) const {
    net::write_full(fd, bytes.data(), bytes.size());
  }

  WireFrame read_frame() {
    std::vector<std::uint8_t> chunk(4096);
    for (;;) {
      WireFrame f;
      const std::size_t used =
          try_extract_frame(buf.data(), buf.size(), "stub", &f);
      if (used > 0) {
        buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(used));
        return f;
      }
      const ssize_t got = net::recv_some(fd, chunk.data(), chunk.size());
      if (got <= 0) throw net::NetError("stub: dispatcher hung up");
      buf.insert(buf.end(), chunk.data(), chunk.data() + got);
    }
  }
};

TEST(DispatchQueue, LeaseExpiryRequeuesAndDuplicateResultIsDiscarded) {
  telemetry::StatusBoard board;
  board.reset(3, {150.0, 150.0, 150.0});

  std::atomic<int> port{0};
  DispatchOptions opts;
  opts.port = 0;
  opts.port_out = &port;
  opts.lease_secs = 0.2;  // expires fast: the stub never heartbeats
  DispatchPolicy pol;
  pol.retry_backoff_s = 0.0;

  WorkerRequest req;
  req.config = small_config(50);
  const auto image = encode_worker_request(req);

  std::atomic<int> requeued{0};
  std::atomic<int> completed{0};
  std::atomic<int> quarantined{0};
  DispatchCallbacks cb;
  cb.make_request = [&](std::size_t, int) { return image; };
  cb.on_started = [](std::size_t, int) {};
  cb.on_completed = [&](std::size_t, int, WorkerResult&&) { ++completed; };
  cb.on_quarantined = [&](std::size_t, int, const std::string&) {
    ++quarantined;
  };
  cb.on_interrupted = [](std::size_t, const std::string&) {};
  cb.on_retrying = [](std::size_t, int, const std::string&) {};
  cb.on_requeued = [&](std::size_t, int, const std::string&) { ++requeued; };
  cb.on_progress = [](std::size_t, std::uint64_t, double) {};
  cb.announce = [](const std::string&) {};

  std::thread dispatcher([&] {
    run_dispatch_queue(3, std::vector<char>(3, 0), opts, pol, &board, cb);
  });
  wait_for([&] { return port.load() > 0; }, 10.0, "listener port");

  // Stub 1 takes a lease and goes silent: no heartbeat, no result. The
  // lease must expire and the batch requeue (to the back of the ready
  // queue) without consuming the sim retry budget.
  Stub s1(port.load());
  s1.send(encode_hello_frame("stalled"));
  s1.send(encode_request_frame());
  const WireFrame g1 = s1.read_frame();
  ASSERT_EQ(g1.type, FrameType::kGrant);
  ASSERT_EQ(g1.items.size(), 1u);
  const std::uint64_t spec0 = g1.items[0].spec;
  EXPECT_EQ(spec0, 0u);
  wait_for([&] { return requeued.load() > 0; }, 10.0, "lease expiry requeue");

  WorkerResult ok;
  ok.ok = true;
  ok.result.delivery_ratio = 1.0;
  ok.result.generated = 4;
  ok.result.delivered = 4;

  // Stub 2 drains spec 1, parks a lease on spec 2, then picks the
  // requeued spec 0 up and completes it — leaving spec 2 in flight so
  // the queue stays alive for the duplicate to arrive.
  Stub s2(port.load());
  s2.send(encode_hello_frame("healthy"));
  s2.send(encode_request_frame());
  const WireFrame g2 = s2.read_frame();
  ASSERT_EQ(g2.type, FrameType::kGrant);
  ASSERT_EQ(g2.items.size(), 1u);
  EXPECT_EQ(g2.items[0].spec, 1u);
  s2.send(encode_result_frame(g2.lease_id, 1, g2.items[0].attempt,
                              encode_worker_result(ok)));
  wait_for([&] { return completed.load() == 1; }, 10.0, "spec 1 completion");

  s2.send(encode_request_frame());
  const WireFrame g3 = s2.read_frame();
  ASSERT_EQ(g3.type, FrameType::kGrant);
  EXPECT_EQ(g3.items[0].spec, 2u);  // parked: completed last

  s2.send(encode_request_frame());
  const WireFrame g4 = s2.read_frame();
  ASSERT_EQ(g4.type, FrameType::kGrant);
  EXPECT_EQ(g4.items[0].spec, spec0);
  EXPECT_EQ(g4.items[0].attempt, g1.items[0].attempt)
      << "a transport loss must not consume the sim retry budget";
  s2.send(encode_result_frame(g4.lease_id, spec0, g4.items[0].attempt,
                              encode_worker_result(ok)));
  wait_for([&] { return completed.load() == 2; }, 10.0, "spec 0 completion");

  // The resurrected stub 1 now publishes its stale result for the
  // already-terminal spec 0: discarded by spec id, not double-completed.
  s1.send(encode_result_frame(g1.lease_id, spec0, g1.items[0].attempt,
                              encode_worker_result(ok)));
  wait_for(
      [&] { return board.snapshot().dispatch.duplicates_discarded >= 1; },
      10.0, "duplicate discard");
  EXPECT_EQ(completed.load(), 2);

  // Unpark spec 2 so the queue can finish. (Its lease may have expired
  // and requeued meanwhile — a late result for a non-terminal spec is
  // still the first accepted one, so it completes either way.)
  s2.send(encode_result_frame(g3.lease_id, 2, g3.items[0].attempt,
                              encode_worker_result(ok)));
  dispatcher.join();

  EXPECT_EQ(completed.load(), 3);
  EXPECT_EQ(quarantined.load(), 0);
  const telemetry::StatusSnapshot snap = board.snapshot();
  EXPECT_TRUE(snap.dispatch_enabled);
  EXPECT_GE(snap.dispatch.leases_expired, 1u);
  EXPECT_EQ(snap.dispatch.duplicates_discarded, 1u);
  EXPECT_EQ(snap.dispatch.results_accepted, 3u);
}

TEST(DispatchQueue, HeartbeatsExtendLeaseOnlyWithEventProgress) {
  telemetry::StatusBoard board;
  board.reset(1, {150.0});

  std::atomic<int> port{0};
  DispatchOptions opts;
  opts.port = 0;
  opts.port_out = &port;
  opts.lease_secs = 0.3;
  DispatchPolicy pol;
  pol.retry_backoff_s = 0.0;

  WorkerRequest req;
  req.config = small_config(51);
  const auto image = encode_worker_request(req);

  std::atomic<int> requeued{0};
  std::atomic<bool> done{false};
  DispatchCallbacks cb;
  cb.make_request = [&](std::size_t, int) { return image; };
  cb.on_started = [](std::size_t, int) {};
  cb.on_completed = [&](std::size_t, int, WorkerResult&&) {};
  cb.on_quarantined = [](std::size_t, int, const std::string&) {};
  cb.on_interrupted = [](std::size_t, const std::string&) {};
  cb.on_retrying = [](std::size_t, int, const std::string&) {};
  cb.on_requeued = [&](std::size_t, int, const std::string&) { ++requeued; };
  cb.on_progress = [](std::size_t, std::uint64_t, double) {};
  cb.announce = [](const std::string&) {};

  std::thread dispatcher([&] {
    run_dispatch_queue(1, std::vector<char>(1, 0), opts, pol, &board, cb);
    done.store(true);
  });
  wait_for([&] { return port.load() > 0; }, 10.0, "listener port");

  Stub s(port.load());
  s.send(encode_hello_frame("hb"));
  s.send(encode_request_frame());
  const WireFrame g = s.read_frame();
  ASSERT_EQ(g.type, FrameType::kGrant);

  // Progressing heartbeats (events strictly increasing) hold the lease
  // well past several base durations.
  std::uint64_t events = 1;
  for (int i = 0; i < 10; ++i) {
    s.send(encode_heartbeat_frame(g.lease_id, g.items[0].spec, events++, 0));
    sleep_ms(100);
  }
  EXPECT_EQ(requeued.load(), 0)
      << "a progressing worker's lease must not expire";

  // A frozen counter (the SIGSTOP signature: frames may flow, progress
  // does not) stops extending it.
  for (int i = 0; i < 10 && requeued.load() == 0; ++i) {
    s.send(encode_heartbeat_frame(g.lease_id, g.items[0].spec, events, 0));
    sleep_ms(100);
  }
  wait_for([&] { return requeued.load() > 0; }, 10.0,
           "expiry under frozen progress");

  WorkerResult ok;
  ok.ok = true;
  s.send(encode_request_frame());
  const WireFrame g2 = s.read_frame();
  ASSERT_EQ(g2.type, FrameType::kGrant);
  s.send(encode_result_frame(g2.lease_id, g2.items[0].spec,
                             g2.items[0].attempt, encode_worker_result(ok)));
  dispatcher.join();
  EXPECT_TRUE(done.load());
}

// --- end-to-end byte identity ------------------------------------------

TEST(DispatchQueue, DispatchedSweepMatchesInProcessManifestBytes) {
  TempDir ref_dir("dispatch_ref.tmp");
  TempDir run_dir("dispatch_run.tmp");
  const std::vector<RunSpec> specs = make_specs(5);

  SupervisorOptions ref_opts;
  ref_opts.checkpoint_dir = ref_dir.path;
  ref_opts.jobs = 1;
  const SweepManifest ref = run_specs_supervised(specs, ref_opts);
  ASSERT_EQ(ref.completed(), 5);

  SupervisorOptions opts;
  opts.checkpoint_dir = run_dir.path;
  std::atomic<int> port{0};
  opts.dispatch.port = 0;
  opts.dispatch.port_out = &port;
  opts.dispatch.batch_size = 2;

  SweepManifest got;
  std::thread supervisor([&] { got = run_specs_supervised(specs, opts); });
  wait_for([&] { return port.load() > 0; }, 10.0, "dispatch port");
  std::thread w1([&] {
    EXPECT_EQ(run_dispatch_worker("127.0.0.1", port.load()), 0);
  });
  std::thread w2([&] {
    EXPECT_EQ(run_dispatch_worker("127.0.0.1", port.load()), 0);
  });
  supervisor.join();
  w1.join();
  w2.join();

  ASSERT_EQ(got.completed(), 5);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(got.specs[i].retries, ref.specs[i].retries);
    EXPECT_EQ(got.specs[i].result.delivered, ref.specs[i].result.delivered);
  }
  EXPECT_EQ(snapshot::read_file(manifest_path(run_dir.path)),
            snapshot::read_file(manifest_path(ref_dir.path)))
      << "dispatched manifest must be byte-identical to in-process";
  // The lease journal is advisory scaffolding; a clean return removes it.
  EXPECT_FALSE(fs::exists(run_dir.path + "/dispatch.leases"));
}

TEST(DispatchQueue, SimFailureRetriesThenQuarantinesLikeLocalModes) {
  // An invariant-violating config quarantines after max_retries + 1
  // reported failures — the dispatcher must mirror the local loop's
  // retry bookkeeping, not treat a reported failure as a transport loss.
  std::atomic<int> port{0};
  DispatchOptions opts;
  opts.port = 0;
  opts.port_out = &port;
  DispatchPolicy pol;
  pol.max_retries = 1;
  pol.retry_backoff_s = 0.0;

  WorkerRequest req;
  req.config = small_config(52);
  const auto image = encode_worker_request(req);

  std::vector<int> retry_attempts;
  std::atomic<int> quarantined_attempt{-1};
  std::string quarantine_detail;
  std::mutex mu;
  DispatchCallbacks cb;
  cb.make_request = [&](std::size_t, int) { return image; };
  cb.on_started = [](std::size_t, int) {};
  cb.on_completed = [&](std::size_t, int, WorkerResult&&) {
    ADD_FAILURE() << "failing spec must not complete";
  };
  cb.on_quarantined = [&](std::size_t, int attempt,
                          const std::string& detail) {
    std::lock_guard<std::mutex> lock(mu);
    quarantine_detail = detail;
    quarantined_attempt.store(attempt);
  };
  cb.on_interrupted = [](std::size_t, const std::string&) {};
  cb.on_retrying = [&](std::size_t, int attempt, const std::string&) {
    std::lock_guard<std::mutex> lock(mu);
    retry_attempts.push_back(attempt);
  };
  cb.on_requeued = [](std::size_t, int, const std::string&) {};
  cb.on_progress = [](std::size_t, std::uint64_t, double) {};
  cb.announce = [](const std::string&) {};

  std::thread dispatcher([&] {
    run_dispatch_queue(1, std::vector<char>(1, 0), opts, pol, nullptr, cb);
  });
  wait_for([&] { return port.load() > 0; }, 10.0, "listener port");

  Stub s(port.load());
  s.send(encode_hello_frame("failer"));
  WorkerResult bad;
  bad.ok = false;
  bad.error = "simulated failure";
  for (int round = 0; round < 2; ++round) {
    s.send(encode_request_frame());
    const WireFrame g = s.read_frame();
    ASSERT_EQ(g.type, FrameType::kGrant);
    EXPECT_EQ(g.items[0].attempt, round);
    s.send(encode_result_frame(g.lease_id, g.items[0].spec,
                               g.items[0].attempt,
                               encode_worker_result(bad)));
  }
  dispatcher.join();

  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(retry_attempts, std::vector<int>{1});
  EXPECT_EQ(quarantined_attempt.load(), 2);
  EXPECT_NE(quarantine_detail.find("attempt 1: simulated failure"),
            std::string::npos)
      << quarantine_detail;
}

}  // namespace
}  // namespace dftmsn
