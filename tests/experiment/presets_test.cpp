#include "experiment/presets.hpp"

#include <gtest/gtest.h>

namespace dftmsn {
namespace {

TEST(Presets, PaperMatchesDefaults) {
  const auto preset = scenario_preset("paper");
  ASSERT_TRUE(preset.has_value());
  const Config defaults;
  EXPECT_EQ(preset->scenario.num_sensors, defaults.scenario.num_sensors);
  EXPECT_EQ(preset->scenario.num_sinks, defaults.scenario.num_sinks);
  EXPECT_DOUBLE_EQ(preset->scenario.duration_s,
                   defaults.scenario.duration_s);
}

TEST(Presets, AllNamesResolveAndValidate) {
  for (const std::string& name : scenario_preset_names()) {
    const auto preset = scenario_preset(name);
    ASSERT_TRUE(preset.has_value()) << name;
    EXPECT_NO_THROW(preset->validate()) << name;
  }
}

TEST(Presets, UnknownNameIsNullopt) {
  EXPECT_FALSE(scenario_preset("does-not-exist").has_value());
  EXPECT_FALSE(scenario_preset("").has_value());
}

TEST(Presets, PresetsAreDistinct) {
  const auto sparse = scenario_preset("sparse");
  const auto pressure = scenario_preset("pressure");
  ASSERT_TRUE(sparse && pressure);
  EXPECT_NE(sparse->scenario.field_m, pressure->scenario.field_m);
  EXPECT_NE(sparse->protocol.queue_capacity,
            pressure->protocol.queue_capacity);
}

}  // namespace
}  // namespace dftmsn
