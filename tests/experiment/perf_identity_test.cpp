// Scheduler/index bit-identity gate (label: tier1-perf). The calendar
// queue and the spatial index are pure performance substitutions — this
// suite is the regression trap that keeps them that way:
//   * a golden trajectory pin (exact integers, bitwise doubles) that any
//     reordering of the event schedule or neighbourhood results breaks,
//   * run_specs at jobs 1 vs 4 compared field-for-field bitwise,
//   * the supervised sweep manifest, byte-compared across jobs 1 vs 4.
// The CLI-level --report-json byte-compare rides in scripts/
// report_identity.sh (ctest: cli_report_identity, same perf label).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/supervisor.hpp"

namespace dftmsn {
namespace {

Config pin_config(std::uint64_t seed) {
  Config c;
  c.scenario.num_sensors = 25;
  c.scenario.num_sinks = 2;
  c.scenario.field_m = 150.0;
  c.scenario.duration_s = 2000.0;
  c.scenario.warmup_s = 100.0;
  c.scenario.seed = seed;
  return c;
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_TRUE(same_bits(a.delivery_ratio, b.delivery_ratio));
  EXPECT_TRUE(same_bits(a.mean_power_mw, b.mean_power_mw));
  EXPECT_TRUE(same_bits(a.mean_delay_s, b.mean_delay_s));
  EXPECT_TRUE(same_bits(a.mean_hops, b.mean_hops));
  EXPECT_TRUE(same_bits(a.overhead_bits_per_delivery,
                        b.overhead_bits_per_delivery));
  EXPECT_TRUE(same_bits(a.fairness_jain, b.fairness_jain));
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.failed_attempts, b.failed_attempts);
  EXPECT_EQ(a.data_transmissions, b.data_transmissions);
  EXPECT_EQ(a.drops_overflow, b.drops_overflow);
  EXPECT_EQ(a.drops_threshold, b.drops_threshold);
  EXPECT_EQ(a.drops_delivered, b.drops_delivered);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.drops_node_failure, b.drops_node_failure);
  EXPECT_EQ(a.frames_fault_corrupted, b.frames_fault_corrupted);
}

// ---------------------------------------------------------------------------
// Golden pin: exact counters of one small OPT run. These integers encode
// the entire event ordering — a scheduler that pops two same-time events
// in a different order, or a spatial index that returns one extra/missing
// neighbor, lands here as a hard failure, in seconds rather than the
// minutes of the full golden_metrics suite.

TEST(PerfIdentity, GoldenTrajectoryPin) {
  const RunResult r = run_once(pin_config(4242), ProtocolKind::kOpt);
  EXPECT_EQ(r.generated, 371u);
  EXPECT_EQ(r.delivered, 177u);
  EXPECT_EQ(r.collisions, 17u);
  EXPECT_EQ(r.attempts, 11376u);
  EXPECT_EQ(r.failed_attempts, 10938u);
  EXPECT_EQ(r.data_transmissions, 344u);
  EXPECT_EQ(r.drops_overflow, 0u);
  EXPECT_EQ(r.drops_threshold, 0u);
  EXPECT_EQ(r.drops_delivered, 185u);
  EXPECT_EQ(r.events_executed, 51755u);
}

// ---------------------------------------------------------------------------
// run_specs: jobs must never leak into results.

TEST(PerfIdentity, RunSpecsBitIdenticalAcrossJobs) {
  std::vector<RunSpec> specs;
  for (std::uint64_t seed : {7u, 8u, 9u, 10u}) {
    RunSpec s;
    s.config = pin_config(seed);
    s.config.scenario.duration_s = 800.0;
    s.kind = (seed % 2 == 0) ? ProtocolKind::kOpt : ProtocolKind::kDirect;
    specs.push_back(s);
  }
  const std::vector<RunResult> serial = run_specs(specs, 1);
  const std::vector<RunResult> parallel = run_specs(specs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    expect_identical(serial[i], parallel[i]);
}

// ---------------------------------------------------------------------------
// Supervised manifest: the on-disk record of a sweep must be byte-equal
// whatever the worker count.

struct TempDir {
  explicit TempDir(const std::string& name) : path(name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(PerfIdentity, SupervisedManifestBytesIdenticalAcrossJobs) {
  std::vector<RunSpec> specs;
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    RunSpec s;
    s.config = pin_config(seed);
    s.config.scenario.duration_s = 600.0;
    s.kind = ProtocolKind::kOpt;
    specs.push_back(s);
  }

  std::string bytes[2];
  const int jobs[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    TempDir dir("perf_identity_manifest_j" + std::to_string(jobs[i]) + ".tmp");
    SupervisorOptions opts;
    opts.checkpoint_dir = dir.path;
    opts.jobs = jobs[i];
    const SweepManifest manifest = run_specs_supervised(specs, opts);
    ASSERT_EQ(manifest.completed(), 3);
    bytes[i] = read_file(manifest_path(dir.path));
    ASSERT_FALSE(bytes[i].empty());
  }
  EXPECT_EQ(bytes[0], bytes[1]);
}

}  // namespace
}  // namespace dftmsn
