// Supervised runs must carry telemetry: the regression here is the
// supervised `--report-json` whose instrument sections came out empty
// because the supervisor path never captured the per-spec registries.
// These tests pin the whole chain — capture, manifest round-trip,
// no-double-counting across retries, and jobs-independence.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "experiment/runner.hpp"
#include "experiment/supervisor.hpp"

namespace dftmsn {
namespace {

Config small_config(std::uint64_t seed) {
  Config c;
  c.scenario.num_sensors = 10;
  c.scenario.num_sinks = 2;
  c.scenario.field_m = 120.0;
  c.scenario.duration_s = 600.0;
  c.scenario.warmup_s = 50.0;
  c.scenario.speed_max_mps = 4.0;
  c.scenario.seed = seed;
  c.telemetry.enabled = true;
  return c;
}

/// RAII scratch directory for checkpoints.
struct TempDir {
  explicit TempDir(const std::string& name) : path(name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

TEST(SupervisorTelemetry, SupervisedRegistryMatchesUnsupervisedRun) {
  TempDir dir("sup_tel_clean.tmp");
  std::vector<RunSpec> specs(2);
  specs[0].config = small_config(101);
  specs[1].config = small_config(102);

  SupervisorOptions opts;
  opts.checkpoint_dir = dir.path;
  const SweepManifest m = run_specs_supervised(specs, opts);
  ASSERT_EQ(m.completed(), 2);

  // Per-spec registries equal the plain runner's, byte for byte
  // (serialize() is canonical).
  std::vector<RunTelemetry> plain;
  run_specs(specs, 1, &plain);
  ASSERT_EQ(plain.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    SCOPED_TRACE(i);
    ASSERT_FALSE(m.specs[i].registry.empty());
    EXPECT_EQ(m.specs[i].registry.serialize(), plain[i].registry.serialize());
  }
}

TEST(SupervisorTelemetry, RetriedSpecDoesNotDoubleCountInstruments) {
  // die@300:attempts=1 crashes attempt 0 past several checkpoints; the
  // retry replays from event 0. The accepted registry must equal a
  // crash-free attempt-1 run — not attempt-0's prefix plus attempt-1.
  TempDir dir("sup_tel_retry.tmp");
  RunSpec spec;
  spec.config = small_config(103);
  spec.config.faults.plan = "die@300:attempts=1";

  SupervisorOptions opts;
  opts.checkpoint_dir = dir.path;
  opts.checkpoint_every_s = 100.0;
  opts.retry_backoff_s = 0.0;
  const SweepManifest m = run_specs_supervised({spec}, opts);
  ASSERT_EQ(m.completed(), 1);
  ASSERT_EQ(m.specs[0].retries, 1);

  Config straight = spec.config;
  straight.faults.attempt = 1;
  RunTelemetry tel;
  run_once(straight, spec.kind, &tel);
  ASSERT_FALSE(tel.registry.empty());
  EXPECT_EQ(m.specs[0].registry.serialize(), tel.registry.serialize());
}

TEST(SupervisorTelemetry, RegistriesRoundTripThroughManifest) {
  TempDir dir("sup_tel_manifest.tmp");
  std::vector<RunSpec> specs(2);
  specs[0].config = small_config(104);
  specs[1].config = small_config(105);
  specs[1].config.telemetry.enabled = false;  // mixed batch

  SupervisorOptions opts;
  opts.checkpoint_dir = dir.path;
  const SweepManifest m = run_specs_supervised(specs, opts);
  ASSERT_EQ(m.completed(), 2);
  ASSERT_FALSE(m.specs[0].registry.empty());
  EXPECT_TRUE(m.specs[1].registry.empty());

  SweepManifest loaded;
  ASSERT_TRUE(load_manifest(manifest_path(dir.path), &loaded));
  ASSERT_EQ(loaded.specs.size(), 2u);
  EXPECT_EQ(loaded.specs[0].registry.serialize(),
            m.specs[0].registry.serialize());
  EXPECT_TRUE(loaded.specs[1].registry.empty());

  // Resuming an already-complete sweep reloads the registries from the
  // manifest without rerunning anything.
  opts.resume = true;
  const SweepManifest again = run_specs_supervised(specs, opts);
  ASSERT_EQ(again.completed(), 2);
  EXPECT_EQ(again.specs[0].registry.serialize(),
            m.specs[0].registry.serialize());
}

TEST(SupervisorTelemetry, ManifestBytesIdenticalAcrossJobs) {
  // The report-json regression in full: both the captured registries and
  // the manifest file itself must be byte-identical at any --jobs.
  std::vector<RunSpec> specs(3);
  for (std::size_t i = 0; i < specs.size(); ++i)
    specs[i].config = small_config(110 + i);

  auto manifest_bytes = [&](const std::string& dirname, int jobs) {
    TempDir dir(dirname);
    SupervisorOptions opts;
    opts.checkpoint_dir = dir.path;
    opts.jobs = jobs;
    const SweepManifest m = run_specs_supervised(specs, opts);
    EXPECT_EQ(m.completed(), 3);
    std::ifstream in(manifest_path(dir.path), std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  };
  const std::string serial = manifest_bytes("sup_tel_j1.tmp", 1);
  const std::string parallel = manifest_bytes("sup_tel_j4.tmp", 4);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace dftmsn
