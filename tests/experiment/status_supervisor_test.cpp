// The observability plane's hard contract: enabling any of it (status
// file, HTTP port, lifecycle trace) leaves a supervised sweep's manifest
// bytes — and therefore its trajectories and aggregates — bit-identical
// at any jobs value, in both isolation modes, even when the sweep
// retries and quarantines. Plus terminal status.json semantics, the
// healthz/quarantine coupling, the attempt-stamped failure details
// (worker signal names included), and trace well-formedness.
//
// DFTMSN_CLI_PATH is injected by CMake ($<TARGET_FILE:dftmsn_cli>).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "experiment/supervisor.hpp"
#include "telemetry/json_value.hpp"
#include "telemetry/status.hpp"

namespace dftmsn {
namespace {

Config small_config(std::uint64_t seed) {
  Config c;
  c.scenario.num_sensors = 10;
  c.scenario.num_sinks = 2;
  c.scenario.field_m = 120.0;
  c.scenario.duration_s = 600.0;
  c.scenario.warmup_s = 50.0;
  c.scenario.speed_max_mps = 4.0;
  c.scenario.seed = seed;
  return c;
}

struct TempDir {
  explicit TempDir(const std::string& name) : path(name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

SupervisorOptions base_options(const std::string& dir, IsolationMode mode) {
  SupervisorOptions opts;
  opts.checkpoint_dir = dir;
  opts.checkpoint_every_s = 100.0;
  opts.retry_backoff_s = 0.0;
  opts.isolate = mode;
  if (mode == IsolationMode::kProcess) opts.worker_exe = DFTMSN_CLI_PATH;
  return opts;
}

/// Runs the same retrying sweep with the plane on or off and returns the
/// final manifest bytes. The faulty spec dies on attempt 0 and succeeds
/// on the retry, so the identity covers the retry path, not just the
/// happy one.
std::string manifest_with_observability(const std::string& dirname,
                                        IsolationMode mode, int jobs,
                                        bool observed) {
  std::vector<RunSpec> specs(3);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].config = small_config(300 + i);
    specs[i].config.telemetry.enabled = true;
  }
  specs[1].config.faults.plan = "die@300:attempts=1";

  TempDir dir(dirname);
  SupervisorOptions opts = base_options(dir.path, mode);
  opts.jobs = jobs;
  opts.max_retries = 1;
  if (observed) {
    opts.obs.status_every_s = 0.05;
    opts.obs.status_dir = dir.path;
    opts.obs.status_port = 0;  // ephemeral; exercises the server too
    opts.obs.trace_path = dir.path + "/trace.jsonl";
  }
  const SweepManifest m = run_specs_supervised(specs, opts);
  EXPECT_EQ(m.completed(), 3);
  EXPECT_EQ(m.specs[1].retries, 1);
  return file_bytes(manifest_path(dir.path));
}

TEST(StatusIdentity, ObservabilityOnEqualsOffInProcess) {
  const std::string off =
      manifest_with_observability("st_off.tmp", IsolationMode::kInProcess, 1,
                                  false);
  ASSERT_FALSE(off.empty());
  EXPECT_EQ(off, manifest_with_observability(
                     "st_on1.tmp", IsolationMode::kInProcess, 1, true));
  EXPECT_EQ(off, manifest_with_observability(
                     "st_on4.tmp", IsolationMode::kInProcess, 4, true));
}

TEST(StatusIdentity, ObservabilityOnEqualsOffIsolated) {
  const std::string off = manifest_with_observability(
      "st_poff.tmp", IsolationMode::kProcess, 1, false);
  ASSERT_FALSE(off.empty());
  EXPECT_EQ(off, manifest_with_observability(
                     "st_pon1.tmp", IsolationMode::kProcess, 1, true));
  EXPECT_EQ(off, manifest_with_observability(
                     "st_pon4.tmp", IsolationMode::kProcess, 4, true));
}

TEST(StatusFile, TerminalDocumentMatchesTheManifest) {
  TempDir dir("st_doc.tmp");
  std::vector<RunSpec> specs(2);
  specs[0].config = small_config(310);
  specs[1].config = small_config(311);
  specs[1].config.faults.plan = "die@200";  // every attempt: quarantined

  SupervisorOptions opts =
      base_options(dir.path, IsolationMode::kInProcess);
  opts.max_retries = 1;
  opts.obs.status_every_s = 0.05;
  opts.obs.status_dir = dir.path;
  const SweepManifest m = run_specs_supervised(specs, opts);
  ASSERT_EQ(m.completed(), 1);
  ASSERT_EQ(m.quarantined(), 1);

  const std::string doc = file_bytes(dir.path + "/status.json");
  ASSERT_FALSE(doc.empty());
  const telemetry::JsonValue v = telemetry::parse_json(doc);
  EXPECT_EQ(v.string_or("schema", ""), "dftmsn-status-v1");
  // A quarantined spec holds /healthz at 503; the final document says so.
  EXPECT_FALSE(v.bool_or("healthy", true));
  const telemetry::JsonValue* phases = v.find("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_DOUBLE_EQ(phases->number_or("done", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(phases->number_or("quarantined", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(phases->number_or("running", -1.0), 0.0);

  const telemetry::JsonValue* rows = v.find("specs");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->items.size(), 2u);
  EXPECT_EQ(rows->items[0].string_or("phase", ""), "done");
  EXPECT_EQ(rows->items[1].string_or("phase", ""), "quarantined");
  // Failure details carry the attempt stamp (satellite: quarantine
  // forensics), and the manifest agrees with the board.
  const std::string detail = rows->items[1].string_or("detail", "");
  EXPECT_NE(detail.find("attempt 1:"), std::string::npos) << detail;
  EXPECT_EQ(detail, m.specs[1].detail);
  // events/sim_time survive into the terminal document.
  EXPECT_DOUBLE_EQ(rows->items[0].number_or("sim_time_s", 0.0), 600.0);
  EXPECT_GT(rows->items[0].number_or("events", 0.0), 0.0);
}

TEST(StatusFile, IsolatedQuarantineNamesTheWorkerSignal) {
  TempDir dir("st_sig.tmp");
  RunSpec spec;
  spec.config = small_config(312);
  spec.config.faults.plan = "segv@200";  // every attempt dies by SIGSEGV

  SupervisorOptions opts = base_options(dir.path, IsolationMode::kProcess);
  opts.max_retries = 0;
  const SweepManifest m = run_specs_supervised({spec}, opts);
  ASSERT_EQ(m.quarantined(), 1);
  // "attempt 0: " prefix always; the decoded signal name ("SIGSEGV")
  // appears unless a sanitizer intercepted the signal, in which case the
  // worker exits with an error instead — accept either, but require the
  // attempt stamp.
  EXPECT_NE(m.specs[0].detail.find("attempt 0:"), std::string::npos)
      << m.specs[0].detail;
}

TEST(LifecycleTraceE2E, SpansAndInstantsForARetryingSweep) {
  TempDir dir("st_trace.tmp");
  RunSpec spec;
  spec.config = small_config(313);
  spec.config.faults.plan = "die@300:attempts=1";

  SupervisorOptions opts =
      base_options(dir.path, IsolationMode::kInProcess);
  opts.max_retries = 1;
  opts.obs.trace_path = dir.path + "/trace.jsonl";
  const SweepManifest m = run_specs_supervised({spec}, opts);
  ASSERT_EQ(m.completed(), 1);
  ASSERT_EQ(m.specs[0].retries, 1);

  std::ifstream in(opts.obs.trace_path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  ASSERT_EQ(line, "[");
  int begins = 0, ends = 0, retries = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    ASSERT_EQ(line.back(), ',');
    const telemetry::JsonValue v =
        telemetry::parse_json(line.substr(0, line.size() - 1));
    const std::string ph = v.string_or("ph", "");
    const std::string name = v.string_or("name", "");
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
    if (name == "retry") ++retries;
  }
  EXPECT_EQ(begins, 2);  // attempt 0 (failed) + attempt 1 (accepted)
  EXPECT_EQ(ends, 2);
  EXPECT_EQ(retries, 1);
}

TEST(StatusOptions, StatusEveryWithoutAnyDirThrows) {
  RunSpec spec;
  spec.config = small_config(314);
  SupervisorOptions opts;  // no checkpoint dir either
  opts.obs.status_every_s = 0.1;
  EXPECT_THROW(run_specs_supervised({spec}, opts), std::runtime_error);
}

TEST(StatusOptions, ResumeCarryOverLandsOnTheBoard) {
  // Run once to completion, then resume: the carried-over spec never
  // re-runs, so the final status.json must still show it done.
  TempDir dir("st_resume.tmp");
  RunSpec spec;
  spec.config = small_config(315);

  SupervisorOptions opts =
      base_options(dir.path, IsolationMode::kInProcess);
  ASSERT_EQ(run_specs_supervised({spec}, opts).completed(), 1);

  opts.resume = true;
  opts.obs.status_every_s = 0.05;
  opts.obs.status_dir = dir.path;
  ASSERT_EQ(run_specs_supervised({spec}, opts).completed(), 1);

  const telemetry::JsonValue v =
      telemetry::parse_json(file_bytes(dir.path + "/status.json"));
  const telemetry::JsonValue* phases = v.find("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_DOUBLE_EQ(phases->number_or("done", 0.0), 1.0);
  EXPECT_TRUE(v.bool_or("healthy", false));
  const telemetry::JsonValue* rows = v.find("specs");
  ASSERT_NE(rows, nullptr);
  EXPECT_GT(rows->items.at(0).number_or("events", 0.0), 0.0);
}

}  // namespace
}  // namespace dftmsn
