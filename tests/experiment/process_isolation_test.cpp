// Process-isolated supervision (IsolationMode::kProcess): clean runs are
// bit-identical to in-process supervision at any jobs value, a worker
// that segfaults or aborts is retried from its checkpoint without
// perturbing the numbers, an ungated crasher is quarantined, a hung
// worker is SIGKILLed by the watchdog, and telemetry registries cross
// the process boundary intact.
//
// DFTMSN_CLI_PATH is injected by CMake ($<TARGET_FILE:dftmsn_cli>): the
// worker executable is the real CLI binary, exactly as in production.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/supervisor.hpp"

namespace dftmsn {
namespace {

Config small_config(std::uint64_t seed) {
  Config c;
  c.scenario.num_sensors = 10;
  c.scenario.num_sinks = 2;
  c.scenario.field_m = 120.0;
  c.scenario.duration_s = 600.0;
  c.scenario.warmup_s = 50.0;
  c.scenario.speed_max_mps = 4.0;
  c.scenario.seed = seed;
  return c;
}

/// RAII scratch directory for checkpoints.
struct TempDir {
  explicit TempDir(const std::string& name) : path(name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

SupervisorOptions base_options(const std::string& dir, IsolationMode mode) {
  SupervisorOptions opts;
  opts.checkpoint_dir = dir;
  opts.checkpoint_every_s = 100.0;
  opts.retry_backoff_s = 0.0;
  opts.isolate = mode;
  if (mode == IsolationMode::kProcess) opts.worker_exe = DFTMSN_CLI_PATH;
  return opts;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

TEST(ProcessIsolation, CleanSweepManifestIdenticalToInProcess) {
  // The tentpole equivalence criterion: same specs, same manifest bytes,
  // for both isolation modes at jobs 1 and 4.
  std::vector<RunSpec> specs(3);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].config = small_config(200 + i);
    specs[i].config.telemetry.enabled = true;
  }

  auto manifest_of = [&](const std::string& dirname, IsolationMode mode,
                         int jobs) {
    TempDir dir(dirname);
    SupervisorOptions opts = base_options(dir.path, mode);
    opts.jobs = jobs;
    const SweepManifest m = run_specs_supervised(specs, opts);
    EXPECT_EQ(m.completed(), 3);
    return file_bytes(manifest_path(dir.path));
  };

  const std::string ref =
      manifest_of("iso_ref.tmp", IsolationMode::kInProcess, 1);
  ASSERT_FALSE(ref.empty());
  EXPECT_EQ(ref, manifest_of("iso_in4.tmp", IsolationMode::kInProcess, 4));
  EXPECT_EQ(ref, manifest_of("iso_pr1.tmp", IsolationMode::kProcess, 1));
  EXPECT_EQ(ref, manifest_of("iso_pr4.tmp", IsolationMode::kProcess, 4));
}

TEST(ProcessIsolation, SegfaultingWorkerRetriesUnperturbed) {
  // attempt 0 segfaults at t=300 (a real SIGSEGV — only the process
  // boundary survives it); the retry must report exactly the numbers of
  // a crash-free attempt-1 run.
  TempDir dir("iso_segv.tmp");
  RunSpec spec;
  spec.config = small_config(210);
  spec.config.faults.plan = "segv@300:attempts=1";

  SupervisorOptions opts = base_options(dir.path, IsolationMode::kProcess);
  opts.max_retries = 1;
  const SweepManifest m = run_specs_supervised({spec}, opts);
  ASSERT_EQ(m.completed(), 1);
  EXPECT_EQ(m.specs[0].retries, 1);
  EXPECT_GT(m.specs[0].checkpoints, 0u);  // the crash left checkpoints behind

  Config straight = spec.config;
  straight.faults.attempt = 1;
  const RunResult expect = run_once(straight, spec.kind);
  EXPECT_EQ(m.specs[0].result.generated, expect.generated);
  EXPECT_EQ(m.specs[0].result.delivered, expect.delivered);
  EXPECT_EQ(m.specs[0].result.events_executed, expect.events_executed);
  EXPECT_DOUBLE_EQ(m.specs[0].result.delivery_ratio, expect.delivery_ratio);
  EXPECT_DOUBLE_EQ(m.specs[0].result.mean_delay_s, expect.mean_delay_s);
}

TEST(ProcessIsolation, AbortingWorkerRetriesAndUngatedOneQuarantines) {
  TempDir dir("iso_abort.tmp");
  std::vector<RunSpec> specs(2);
  specs[0].config = small_config(211);
  specs[0].config.faults.plan = "abort@300:attempts=1";  // retry succeeds
  specs[1].config = small_config(212);
  specs[1].config.faults.plan = "segv@300";  // every attempt dies

  SupervisorOptions opts = base_options(dir.path, IsolationMode::kProcess);
  opts.max_retries = 1;
  const SweepManifest m = run_specs_supervised(specs, opts);

  EXPECT_EQ(m.specs[0].status, SpecStatus::kCompleted);
  EXPECT_EQ(m.specs[0].retries, 1);
  EXPECT_EQ(m.specs[1].status, SpecStatus::kQuarantined);
  EXPECT_EQ(m.specs[1].retries, 2);  // initial try + 1 retry, both killed
  // Under ASan the signal is intercepted and the worker exits nonzero
  // instead of dying by signal, so assert only that a failure reason was
  // recorded — not its exact wording.
  EXPECT_FALSE(m.specs[1].detail.empty());
}

TEST(ProcessIsolation, WatchdogKillsHungWorker) {
  // The in-process watchdog flips a cooperative abort flag; a worker
  // can't see that flag, so the parent must SIGKILL it and retry.
  TempDir dir("iso_hang.tmp");
  RunSpec spec;
  spec.config = small_config(213);
  spec.config.faults.plan = "hang@300:attempts=1";

  SupervisorOptions opts = base_options(dir.path, IsolationMode::kProcess);
  opts.watchdog_secs = 0.4;
  const SweepManifest m = run_specs_supervised({spec}, opts);
  ASSERT_EQ(m.completed(), 1);
  EXPECT_GE(m.specs[0].retries, 1);

  Config straight = spec.config;
  straight.faults.attempt = 1;
  const RunResult expect = run_once(straight, spec.kind);
  EXPECT_EQ(m.specs[0].result.events_executed, expect.events_executed);
  EXPECT_EQ(m.specs[0].result.delivered, expect.delivered);
}

TEST(ProcessIsolation, RegistryCrossesTheProcessBoundaryIntact) {
  RunSpec spec;
  spec.config = small_config(214);
  spec.config.telemetry.enabled = true;

  TempDir in_dir("iso_tel_in.tmp");
  TempDir pr_dir("iso_tel_pr.tmp");
  const SweepManifest in_proc = run_specs_supervised(
      {spec}, base_options(in_dir.path, IsolationMode::kInProcess));
  const SweepManifest isolated = run_specs_supervised(
      {spec}, base_options(pr_dir.path, IsolationMode::kProcess));
  ASSERT_EQ(in_proc.completed(), 1);
  ASSERT_EQ(isolated.completed(), 1);
  ASSERT_FALSE(isolated.specs[0].registry.empty());
  EXPECT_EQ(isolated.specs[0].registry.serialize(),
            in_proc.specs[0].registry.serialize());
}

TEST(ProcessIsolation, WorksWithoutACheckpointDir) {
  // No checkpoint_dir: worker scratch files go to a temp dir the
  // supervisor creates and removes; retries restart from scratch.
  RunSpec spec;
  spec.config = small_config(215);
  spec.config.faults.plan = "segv@300:attempts=1";

  SupervisorOptions opts;
  opts.retry_backoff_s = 0.0;
  opts.max_retries = 1;
  opts.isolate = IsolationMode::kProcess;
  opts.worker_exe = DFTMSN_CLI_PATH;
  const SweepManifest m = run_specs_supervised({spec}, opts);
  ASSERT_EQ(m.completed(), 1);
  EXPECT_EQ(m.specs[0].retries, 1);
  EXPECT_EQ(m.specs[0].checkpoints, 0u);
}

TEST(ProcessIsolation, ProcessModeWithoutWorkerExeThrows) {
  RunSpec spec;
  spec.config = small_config(216);
  SupervisorOptions opts;
  opts.isolate = IsolationMode::kProcess;  // worker_exe left empty
  EXPECT_THROW(run_specs_supervised({spec}, opts), std::runtime_error);
}

// --- end-to-end through the CLI itself ---------------------------------

int run_cli(const std::string& args) {
  const std::string cmd = std::string(DFTMSN_CLI_PATH) + " " + args +
                          " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(ProcessIsolationCli, GatedSegvSweepExitsZeroUngatedExitsFive) {
  // The ISSUE acceptance commands: a gated segv plan completes (exit 0)
  // under --isolate process --max-retries 1; the ungated plan
  // quarantines every replication (exit 5).
  const std::string scenario =
      " scenario.num_sensors=10 scenario.duration_s=600"
      " scenario.warmup_s=50 --reps 2 --isolate process --max-retries 1"
      " --checkpoint-every 100 --checkpoint-dir ";
  TempDir d1("iso_cli_ok.tmp");
  EXPECT_EQ(run_cli("--faults segv@300:attempts=1" + scenario + d1.path), 0);

  TempDir d2("iso_cli_quar.tmp");
  EXPECT_EQ(run_cli("--faults segv@300" + scenario + d2.path), 5);
}

}  // namespace
}  // namespace dftmsn
