// Supervisor behaviour: watchdog rescue of hung replications, retry from
// the last good checkpoint after crashes, quarantine when the retry
// budget runs out, manifest bookkeeping, and partial aggregation. Uses
// the fault harness's `hang`/`die` primitives (with `attempts=` gating)
// to make every failure deterministic.
#include "experiment/supervisor.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "experiment/runner.hpp"

namespace dftmsn {
namespace {

Config small_config(std::uint64_t seed) {
  Config c;
  c.scenario.num_sensors = 10;
  c.scenario.num_sinks = 2;
  c.scenario.field_m = 120.0;
  c.scenario.duration_s = 600.0;
  c.scenario.warmup_s = 50.0;
  c.scenario.speed_max_mps = 4.0;
  c.scenario.seed = seed;
  return c;
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_TRUE(same_bits(a.delivery_ratio, b.delivery_ratio));
  EXPECT_TRUE(same_bits(a.mean_power_mw, b.mean_power_mw));
  EXPECT_TRUE(same_bits(a.mean_delay_s, b.mean_delay_s));
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

/// RAII scratch directory for checkpoints.
struct TempDir {
  explicit TempDir(const std::string& name) : path(name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

TEST(Supervisor, CrashingReplicationRetriesFromCheckpointUnperturbed) {
  TempDir dir("supervisor_die.tmp");
  RunSpec spec;
  spec.config = small_config(77);
  spec.config.faults.plan = "die@300:attempts=1";  // crashes attempt 0 only

  SupervisorOptions opts;
  opts.checkpoint_dir = dir.path;
  opts.checkpoint_every_s = 100.0;
  opts.retry_backoff_s = 0.0;
  const SweepManifest m = run_specs_supervised({spec}, opts);
  ASSERT_EQ(m.completed(), 1);
  EXPECT_EQ(m.specs[0].retries, 1);
  EXPECT_EQ(m.retried(), 1);

  // The retried replication must report exactly the numbers of a run
  // that executed attempt 1 start-to-finish: supervision is invisible.
  Config straight = spec.config;
  straight.faults.attempt = 1;
  expect_identical(run_once(straight, spec.kind), m.specs[0].result);
}

TEST(Supervisor, WatchdogRescuesHungReplication) {
  TempDir dir("supervisor_hang.tmp");
  RunSpec spec;
  spec.config = small_config(78);
  spec.config.faults.plan = "hang@300:attempts=1";  // hangs attempt 0 only

  SupervisorOptions opts;
  opts.checkpoint_dir = dir.path;
  opts.checkpoint_every_s = 100.0;
  opts.watchdog_secs = 0.4;
  opts.retry_backoff_s = 0.0;
  const SweepManifest m = run_specs_supervised({spec}, opts);
  ASSERT_EQ(m.completed(), 1);
  EXPECT_GE(m.specs[0].retries, 1);

  Config straight = spec.config;
  straight.faults.attempt = 1;
  expect_identical(run_once(straight, spec.kind), m.specs[0].result);
}

TEST(Supervisor, QuarantinesAfterRetryBudgetAndAggregatesTheRest) {
  TempDir dir("supervisor_quarantine.tmp");
  std::vector<RunSpec> specs(2);
  specs[0].config = small_config(79);
  specs[0].config.faults.plan = "die@300";  // ungated: dies every attempt
  specs[1].config = small_config(80);       // clean

  SupervisorOptions opts;
  opts.checkpoint_dir = dir.path;
  opts.checkpoint_every_s = 100.0;
  opts.max_retries = 1;
  opts.retry_backoff_s = 0.0;
  const SweepManifest m = run_specs_supervised(specs, opts);

  EXPECT_EQ(m.specs[0].status, SpecStatus::kQuarantined);
  EXPECT_EQ(m.specs[0].retries, 2);  // initial try + 1 retry, both died
  EXPECT_FALSE(m.specs[0].detail.empty());
  EXPECT_EQ(m.specs[1].status, SpecStatus::kCompleted);
  EXPECT_EQ(m.completed(), 1);
  EXPECT_EQ(m.quarantined(), 1);

  // Partial aggregation folds only the completed replication.
  const std::vector<RunResult> done = completed_results(m);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].generated, m.specs[1].result.generated);
}

TEST(Supervisor, AcceptanceMixedSweepWithHangAndCrashCompletes) {
  // The ISSUE acceptance scenario: a sweep containing >= 1 deliberately
  // hung and >= 1 crashing replication completes with correct counts.
  TempDir dir("supervisor_mixed.tmp");
  std::vector<RunSpec> specs(3);
  specs[0].config = small_config(81);
  specs[0].config.faults.plan = "hang@250:attempts=1";
  specs[1].config = small_config(82);
  specs[1].config.faults.plan = "die@250:attempts=1";
  specs[2].config = small_config(83);  // clean

  SupervisorOptions opts;
  opts.checkpoint_dir = dir.path;
  opts.checkpoint_every_s = 100.0;
  opts.watchdog_secs = 0.4;
  opts.retry_backoff_s = 0.0;
  opts.jobs = 3;
  const SweepManifest m = run_specs_supervised(specs, opts);
  EXPECT_EQ(m.completed(), 3);
  EXPECT_EQ(m.quarantined(), 0);
  EXPECT_EQ(m.interrupted(), 0);
  EXPECT_EQ(m.retried(), 2);
  EXPECT_EQ(m.specs[2].retries, 0);
}

TEST(Supervisor, InterruptedSweepResumesAndSkipsCompleted) {
  TempDir dir("supervisor_resume.tmp");
  std::vector<RunSpec> specs(2);
  specs[0].config = small_config(84);
  specs[1].config = small_config(85);

  SupervisorOptions opts;
  opts.checkpoint_dir = dir.path;
  opts.checkpoint_every_s = 150.0;
  opts.stop_after_checkpoints = 1;
  SweepManifest m = run_specs_supervised(specs, opts);
  EXPECT_EQ(m.interrupted(), 2);
  EXPECT_TRUE(std::filesystem::exists(manifest_path(dir.path)));
  EXPECT_TRUE(
      std::filesystem::exists(checkpoint_container_path(dir.path)));

  opts.stop_after_checkpoints = 0;
  opts.resume = true;
  m = run_specs_supervised(specs, opts);
  ASSERT_EQ(m.completed(), 2);
  const RunResult first = m.specs[0].result;

  // A third invocation finds everything completed and reloads results
  // from the manifest bit-for-bit, without running anything.
  m = run_specs_supervised(specs, opts);
  EXPECT_EQ(m.completed(), 2);
  expect_identical(first, m.specs[0].result);
}

TEST(Supervisor, ResumeRejectsManifestFromDifferentSweep) {
  TempDir dir("supervisor_drift.tmp");
  std::vector<RunSpec> specs(1);
  specs[0].config = small_config(86);

  SupervisorOptions opts;
  opts.checkpoint_dir = dir.path;
  run_specs_supervised(specs, opts);

  opts.resume = true;
  specs[0].config.protocol.alpha = 0.9;  // drifted parameters
  EXPECT_THROW(run_specs_supervised(specs, opts), std::runtime_error);
}

TEST(Supervisor, ManifestRoundTripsThroughDisk) {
  TempDir dir("supervisor_manifest.tmp");
  std::filesystem::create_directories(dir.path);
  SweepManifest m;
  m.specs.resize(3);
  m.specs[0].status = SpecStatus::kCompleted;
  m.specs[0].config_digest = 12345678901234567890ull;
  m.specs[0].result.delivery_ratio = 0.123456789012345;
  m.specs[0].result.generated = 42;
  m.specs[0].result.events_executed = 99999;
  m.specs[1].status = SpecStatus::kQuarantined;
  m.specs[1].retries = 3;
  m.specs[1].detail = "watchdog: no event progress for 0.4s wall";
  m.specs[2].status = SpecStatus::kInterrupted;
  m.specs[2].detail = "interrupted at t=450.0";

  const std::string path = manifest_path(dir.path);
  write_manifest(path, m);
  SweepManifest loaded;
  ASSERT_TRUE(load_manifest(path, &loaded));
  ASSERT_EQ(loaded.specs.size(), 3u);
  EXPECT_EQ(loaded.specs[0].status, SpecStatus::kCompleted);
  EXPECT_EQ(loaded.specs[0].config_digest, 12345678901234567890ull);
  EXPECT_TRUE(same_bits(loaded.specs[0].result.delivery_ratio,
                        0.123456789012345));
  EXPECT_EQ(loaded.specs[0].result.generated, 42u);
  EXPECT_EQ(loaded.specs[1].status, SpecStatus::kQuarantined);
  EXPECT_EQ(loaded.specs[1].retries, 3);
  EXPECT_EQ(loaded.specs[1].detail,
            "watchdog: no event progress for 0.4s wall");
  EXPECT_EQ(loaded.specs[2].status, SpecStatus::kInterrupted);

  SweepManifest missing;
  EXPECT_FALSE(load_manifest(dir.path + "/nope.txt", &missing));
}

TEST(Supervisor, SweepAggregationSkipsQuarantinedPoints) {
  TempDir dir("supervisor_sweep.tmp");
  std::vector<SweepPoint> points(2);
  points[0].config = small_config(90);
  points[1].config = small_config(90);
  points[1].config.faults.plan = "die@200";  // every replication dies

  SupervisorOptions opts;
  opts.checkpoint_dir = dir.path;
  opts.max_retries = 0;
  opts.retry_backoff_s = 0.0;
  const SupervisedSweep sweep = run_sweep_supervised(points, 2, opts);
  ASSERT_EQ(sweep.points.size(), 2u);
  EXPECT_EQ(sweep.manifest.completed(), 2);
  EXPECT_EQ(sweep.manifest.quarantined(), 2);
  EXPECT_EQ(sweep.points[0].replications, 2);
  EXPECT_EQ(sweep.points[1].replications, 0);  // nothing to aggregate
}

TEST(Supervisor, ExternalStopMarksSpecsInterrupted) {
  TempDir dir("supervisor_stop.tmp");
  std::vector<RunSpec> specs(3);
  for (std::size_t i = 0; i < specs.size(); ++i)
    specs[i].config = small_config(95 + i);

  std::atomic<bool> stop{true};  // raised before anything starts
  SupervisorOptions opts;
  opts.checkpoint_dir = dir.path;
  opts.stop = &stop;
  const SweepManifest m = run_specs_supervised(specs, opts);
  EXPECT_EQ(m.completed(), 0);
  EXPECT_EQ(m.interrupted(), 3);
}

}  // namespace
}  // namespace dftmsn
