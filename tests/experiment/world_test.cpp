// End-to-end tests of the assembled World across all protocol variants,
// plus determinism and metric-invariant property checks.
#include <gtest/gtest.h>

#include "experiment/runner.hpp"
#include "experiment/world.hpp"

namespace dftmsn {
namespace {

Config small_config(std::uint64_t seed = 1) {
  Config c;
  c.scenario.num_sensors = 30;
  c.scenario.num_sinks = 2;
  c.scenario.duration_s = 1500.0;
  c.scenario.seed = seed;
  return c;
}

TEST(World, ConstructionValidatesConfig) {
  Config c = small_config();
  c.scenario.num_sensors = 0;
  EXPECT_THROW(World(c, ProtocolKind::kOpt), std::invalid_argument);
}

TEST(World, NodeIdsPartitionSensorsAndSinks) {
  World w(small_config(), ProtocolKind::kOpt);
  EXPECT_EQ(w.sensors().size(), 30u);
  EXPECT_EQ(w.sinks().size(), 2u);
  EXPECT_EQ(w.first_sink_id(), 30u);
  EXPECT_EQ(w.sensors()[5]->id(), 5u);
  EXPECT_EQ(w.sinks()[1]->id(), 31u);
}

TEST(World, RunUntilBeyondDurationThrows) {
  World w(small_config(), ProtocolKind::kOpt);
  EXPECT_THROW(w.run_until(1e9), std::invalid_argument);
}

TEST(World, IncrementalRunsAccumulate) {
  World w(small_config(), ProtocolKind::kOpt);
  w.run_until(500.0);
  const auto gen_early = w.metrics().generated();
  w.run_until(1500.0);
  EXPECT_GE(w.metrics().generated(), gen_early);
  EXPECT_DOUBLE_EQ(w.sim().now(), 1500.0);
}

TEST(Runner, DeterministicAcrossIdenticalRuns) {
  const Config c = small_config(7);
  const RunResult a = run_once(c, ProtocolKind::kOpt);
  const RunResult b = run_once(c, ProtocolKind::kOpt);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_DOUBLE_EQ(a.mean_power_mw, b.mean_power_mw);
  EXPECT_DOUBLE_EQ(a.mean_delay_s, b.mean_delay_s);
}

TEST(Runner, DifferentSeedsDiffer) {
  const RunResult a = run_once(small_config(1), ProtocolKind::kOpt);
  const RunResult b = run_once(small_config(2), ProtocolKind::kOpt);
  // Event counts colliding across seeds would be astonishing.
  EXPECT_NE(a.events_executed, b.events_executed);
}

TEST(Runner, ReplicationAggregates) {
  const ReplicatedResult r =
      run_replicated(small_config(), ProtocolKind::kOpt, 3);
  EXPECT_EQ(r.replications, 3);
  EXPECT_EQ(r.delivery_ratio.count(), 3u);
  EXPECT_GE(r.delivery_ratio.min(), 0.0);
  EXPECT_LE(r.delivery_ratio.max(), 1.0);
}

TEST(Runner, BenchBudgetEnvOverrides) {
  setenv("DFTMSN_BENCH_REPS", "5", 1);
  setenv("DFTMSN_BENCH_DURATION", "1234", 1);
  const BenchBudget b = bench_budget_from_env();
  EXPECT_EQ(b.replications, 5);
  EXPECT_DOUBLE_EQ(b.duration_s, 1234.0);
  unsetenv("DFTMSN_BENCH_REPS");
  unsetenv("DFTMSN_BENCH_DURATION");
  const BenchBudget d = bench_budget_from_env();
  EXPECT_EQ(d.replications, 3);
  EXPECT_DOUBLE_EQ(d.duration_s, 25'000.0);
}

// --- invariants across every protocol variant --------------------------

class WorldProperty : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(WorldProperty, RunInvariantsHold) {
  World w(small_config(11), GetParam());
  w.run();

  const Metrics& m = w.metrics();
  EXPECT_LE(m.delivered_unique(), m.generated());
  EXPECT_GE(m.delivery_ratio(), 0.0);
  EXPECT_LE(m.delivery_ratio(), 1.0);
  EXPECT_GE(m.mean_delay_s(), 0.0);

  // Per-node invariants.
  for (auto& s : w.sensors()) {
    EXPECT_LE(s->queue().size(), s->queue().capacity());
    const double metric = s->mac().strategy().local_metric();
    EXPECT_GE(metric, 0.0);
    EXPECT_LE(metric, 1.0);
    for (const auto& q : s->queue().items()) {
      EXPECT_GE(q.ftd, 0.0);
      EXPECT_LE(q.ftd, 1.0);
      EXPECT_LE(q.msg.created, w.sim().now());
    }
  }

  // Energy sanity: mean power between pure-sleep and pure-tx bounds.
  const double power_mw = w.mean_sensor_power_mw();
  EXPECT_GT(power_mw, 0.0);
  EXPECT_LT(power_mw, 25.0);

  // Channel accounting.
  const auto& ch = w.channel().counters();
  EXPECT_LE(ch.frames_delivered + ch.collisions, ch.frames_sent * 64u);
}

TEST_P(WorldProperty, NoSleepConsumesIdlePower) {
  if (GetParam() != ProtocolKind::kNoSleep) GTEST_SKIP();
  World w(small_config(3), GetParam());
  w.run();
  // Always-on radios must burn close to the 13.5 mW idle floor.
  EXPECT_GT(w.mean_sensor_power_mw(), 10.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, WorldProperty,
    ::testing::Values(ProtocolKind::kOpt, ProtocolKind::kNoOpt,
                      ProtocolKind::kNoSleep, ProtocolKind::kZbr,
                      ProtocolKind::kDirect, ProtocolKind::kEpidemic,
                      ProtocolKind::kSwim),
    [](const ::testing::TestParamInfo<ProtocolKind>& info) {
      return protocol_kind_name(info.param);
    });

}  // namespace
}  // namespace dftmsn
