// Serial/parallel equivalence suite for the experiment engine: whatever
// the worker count, run_replicated / run_sweep must return aggregates
// BIT-IDENTICAL to the jobs=1 path. This is the guarantee that lets the
// benches fan the paper's figures across cores without perturbing a
// single reproduced number.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "experiment/presets.hpp"
#include "experiment/runner.hpp"

namespace dftmsn {
namespace {

// Exact (bitwise) comparison of two summaries. EXPECT_EQ on doubles is
// deliberate: "close" is not good enough — the parallel engine promises
// the identical floating-point reduction order.
void expect_identical(const Summary& a, const Summary& b, const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.variance(), b.variance()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
  EXPECT_EQ(a.ci95_half_width(), b.ci95_half_width()) << what;
}

void expect_identical(const ReplicatedResult& a, const ReplicatedResult& b) {
  EXPECT_EQ(a.replications, b.replications);
  expect_identical(a.delivery_ratio, b.delivery_ratio, "delivery_ratio");
  expect_identical(a.mean_power_mw, b.mean_power_mw, "mean_power_mw");
  expect_identical(a.mean_delay_s, b.mean_delay_s, "mean_delay_s");
  expect_identical(a.overhead_bits_per_delivery, b.overhead_bits_per_delivery,
                   "overhead_bits_per_delivery");
  expect_identical(a.collisions, b.collisions, "collisions");
  expect_identical(a.fairness_jain, b.fairness_jain, "fairness_jain");
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.mean_power_mw, b.mean_power_mw);
  EXPECT_EQ(a.mean_delay_s, b.mean_delay_s);
  EXPECT_EQ(a.mean_hops, b.mean_hops);
  EXPECT_EQ(a.overhead_bits_per_delivery, b.overhead_bits_per_delivery);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.failed_attempts, b.failed_attempts);
  EXPECT_EQ(a.data_transmissions, b.data_transmissions);
  EXPECT_EQ(a.fairness_jain, b.fairness_jain);
  EXPECT_EQ(a.drops_overflow, b.drops_overflow);
  EXPECT_EQ(a.drops_threshold, b.drops_threshold);
  EXPECT_EQ(a.drops_delivered, b.drops_delivered);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

// Short horizons + small populations keep the suite quick; the engine is
// agnostic to scale, so the guarantee transfers to the full scenarios.
Config shrunk(Config c) {
  c.scenario.num_sensors = std::min(c.scenario.num_sensors, 25);
  c.scenario.duration_s = std::min(c.scenario.duration_s, 1'500.0);
  return c;
}

TEST(ParallelDeterminism, ReplicatedAcrossPresetsAndProtocols) {
  const std::vector<std::string> presets{"paper", "sparse", "pressure"};
  const std::vector<ProtocolKind> kinds{
      ProtocolKind::kOpt, ProtocolKind::kZbr, ProtocolKind::kEpidemic};
  for (const std::string& preset : presets) {
    const auto cfg = scenario_preset(preset);
    ASSERT_TRUE(cfg.has_value()) << preset;
    for (const ProtocolKind kind : kinds) {
      const Config c = shrunk(*cfg);
      const ReplicatedResult serial = run_replicated(c, kind, 4, /*jobs=*/1);
      const ReplicatedResult parallel = run_replicated(c, kind, 4, /*jobs=*/4);
      SCOPED_TRACE(preset + "/" + protocol_kind_name(kind));
      expect_identical(serial, parallel);
    }
  }
}

TEST(ParallelDeterminism, OversubscribedJobsStillIdentical) {
  // More workers than replications, and "auto" (jobs=0): same numbers.
  Config c;
  c.scenario.num_sensors = 20;
  c.scenario.duration_s = 1'000.0;
  const ReplicatedResult serial =
      run_replicated(c, ProtocolKind::kOpt, 3, /*jobs=*/1);
  const ReplicatedResult wide =
      run_replicated(c, ProtocolKind::kOpt, 3, /*jobs=*/16);
  const ReplicatedResult automatic =
      run_replicated(c, ProtocolKind::kOpt, 3, /*jobs=*/0);
  expect_identical(serial, wide);
  expect_identical(serial, automatic);
}

TEST(ParallelDeterminism, SweepGridIdenticalIncludingRawRuns) {
  std::vector<SweepPoint> points;
  for (const int sinks : {1, 3}) {
    for (const ProtocolKind kind :
         {ProtocolKind::kOpt, ProtocolKind::kDirect}) {
      SweepPoint p;
      p.config.scenario.num_sensors = 20;
      p.config.scenario.num_sinks = sinks;
      p.config.scenario.duration_s = 1'000.0;
      p.kind = kind;
      points.push_back(p);
    }
  }
  std::vector<std::vector<RunResult>> raw1, raw4;
  const auto serial = run_sweep(points, 2, /*jobs=*/1, &raw1);
  const auto parallel = run_sweep(points, 2, /*jobs=*/4, &raw4);
  ASSERT_EQ(serial.size(), points.size());
  ASSERT_EQ(parallel.size(), points.size());
  ASSERT_EQ(raw1.size(), raw4.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(serial[i], parallel[i]);
    ASSERT_EQ(raw1[i].size(), raw4[i].size());
    for (std::size_t r = 0; r < raw1[i].size(); ++r)
      expect_identical(raw1[i][r], raw4[i][r]);
  }
}

TEST(ParallelDeterminism, SeedDerivationIsPureFunctionOfReplication) {
  // Replication r always runs seed base+r, so run_replicated must equal a
  // hand-rolled serial loop over run_once regardless of worker count.
  Config c;
  c.scenario.num_sensors = 20;
  c.scenario.duration_s = 1'000.0;
  c.scenario.seed = 77;

  ReplicatedResult manual;
  manual.replications = 3;
  for (int rep = 0; rep < 3; ++rep) {
    Config cr = c;
    cr.scenario.seed = 77 + static_cast<std::uint64_t>(rep);
    const RunResult r = run_once(cr, ProtocolKind::kOpt);
    manual.delivery_ratio.add(r.delivery_ratio);
    manual.mean_power_mw.add(r.mean_power_mw);
    manual.mean_delay_s.add(r.mean_delay_s);
    manual.overhead_bits_per_delivery.add(r.overhead_bits_per_delivery);
    manual.collisions.add(static_cast<double>(r.collisions));
    manual.fairness_jain.add(r.fairness_jain);
  }
  const ReplicatedResult engine =
      run_replicated(c, ProtocolKind::kOpt, 3, /*jobs=*/4);
  expect_identical(manual, engine);
}

TEST(ParallelDeterminism, ConcurrentWorldsShareNoMutableState) {
  // The audit test for satellite "fix run_once/World for concurrent use":
  // N threads running the *same* (config, seed) must all reproduce the
  // serial result exactly — any shared mutable static (RNG, logging, id
  // allocation, caches) would show up as divergence or as a TSan race.
  Config c;
  c.scenario.num_sensors = 20;
  c.scenario.duration_s = 1'000.0;
  const RunResult expected = run_once(c, ProtocolKind::kOpt);

  constexpr int kThreads = 8;
  std::vector<RunResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { results[t] = run_once(c, ProtocolKind::kOpt); });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    SCOPED_TRACE(t);
    expect_identical(expected, results[t]);
  }
}

TEST(ParallelDeterminism, MixedProtocolsConcurrently) {
  // Different protocol variants running side by side must not interfere.
  const std::vector<ProtocolKind> kinds{
      ProtocolKind::kOpt, ProtocolKind::kNoOpt, ProtocolKind::kNoSleep,
      ProtocolKind::kZbr, ProtocolKind::kDirect, ProtocolKind::kEpidemic};
  Config c;
  c.scenario.num_sensors = 15;
  c.scenario.duration_s = 800.0;

  std::vector<RunResult> serial;
  serial.reserve(kinds.size());
  for (const ProtocolKind k : kinds) serial.push_back(run_once(c, k));

  std::vector<RunResult> concurrent(kinds.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    threads.emplace_back(
        [&, i] { concurrent[i] = run_once(c, kinds[i]); });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    SCOPED_TRACE(protocol_kind_name(kinds[i]));
    expect_identical(serial[i], concurrent[i]);
  }
}

}  // namespace
}  // namespace dftmsn
