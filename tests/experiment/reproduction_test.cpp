// Executable reproduction claims: the paper's headline orderings (Fig. 2)
// asserted on a reduced-population scenario. Deliberately coarse (single
// seed, generous margins): they guard the *shape* of the results against
// regressions, not exact values.
//
// All assertions live in one TEST so the eight underlying simulations run
// once per ctest invocation (gtest_discover_tests isolates each TEST in
// its own process).
#include <gtest/gtest.h>

#include <algorithm>

#include "experiment/runner.hpp"

namespace dftmsn {
namespace {

Config reduced(int sinks, std::uint64_t seed = 5) {
  // Full 25 000 s horizon (short horizons distort the energy shares and
  // penalize sleeping protocols transiently), but a halved population to
  // keep the suite fast.
  Config c;
  c.scenario.num_sensors = 50;
  c.scenario.num_sinks = sinks;
  c.scenario.duration_s = 25'000.0;
  c.scenario.seed = seed;
  return c;
}

TEST(Reproduction, Fig2ShapesHold) {
  constexpr int kOpt = 0, kNoOpt = 1, kNoSleep = 2, kZbr = 3;
  RunResult r[2][4];
  for (int si : {0, 1}) {
    const int sinks = si == 0 ? 1 : 3;
    r[si][kOpt] = run_once(reduced(sinks), ProtocolKind::kOpt);
    r[si][kNoOpt] = run_once(reduced(sinks), ProtocolKind::kNoOpt);
    r[si][kNoSleep] = run_once(reduced(sinks), ProtocolKind::kNoSleep);
    r[si][kZbr] = run_once(reduced(sinks), ProtocolKind::kZbr);
  }

  // Fig. 2(a): delivery ratio rises with the number of sinks.
  for (int p = 0; p < 4; ++p) {
    EXPECT_GT(r[1][p].delivery_ratio, r[0][p].delivery_ratio)
        << "protocol " << p;
  }

  // Fig. 2(a): ZBR delivers least, at both sink counts.
  for (int si : {0, 1}) {
    for (int p : {kOpt, kNoOpt, kNoSleep}) {
      EXPECT_LT(r[si][kZbr].delivery_ratio, r[si][p].delivery_ratio)
          << "si=" << si << " p=" << p;
    }
  }

  // Fig. 2(b): power ordering NOSLEEP >> NOOPT > ZBR > OPT.
  for (int si : {0, 1}) {
    EXPECT_GT(r[si][kNoSleep].mean_power_mw,
              3.0 * r[si][kNoOpt].mean_power_mw) << "si=" << si;
    EXPECT_GT(r[si][kNoOpt].mean_power_mw, r[si][kZbr].mean_power_mw)
        << "si=" << si;
    EXPECT_GT(r[si][kZbr].mean_power_mw, r[si][kOpt].mean_power_mw)
        << "si=" << si;
    // NOSLEEP vs OPT: the paper reports ~8x; accept the same order of
    // magnitude (5x-40x).
    const double factor =
        r[si][kNoSleep].mean_power_mw / r[si][kOpt].mean_power_mw;
    EXPECT_GT(factor, 5.0) << "si=" << si;
    EXPECT_LT(factor, 40.0) << "si=" << si;
  }

  // Fig. 2(c): delay falls with more sinks; NOSLEEP's delay beats OPT's.
  for (int p = 0; p < 4; ++p) {
    EXPECT_LT(r[1][p].mean_delay_s, r[0][p].mean_delay_s) << "protocol " << p;
  }
  for (int si : {0, 1}) {
    EXPECT_LT(r[si][kNoSleep].mean_delay_s, r[si][kOpt].mean_delay_s)
        << "si=" << si;
  }

  // OPT stays within a few points of the always-on variants while paying
  // a small fraction of their energy.
  for (int si : {0, 1}) {
    const double best = std::max(r[si][kNoOpt].delivery_ratio,
                                 r[si][kNoSleep].delivery_ratio);
    EXPECT_GT(r[si][kOpt].delivery_ratio, best - 0.12) << "si=" << si;
  }

  // Sec. 5: NOOPT's fixed windows collide more per attempt.
  for (int si : {0, 1}) {
    const double noopt_rate = static_cast<double>(r[si][kNoOpt].collisions) /
                              static_cast<double>(r[si][kNoOpt].attempts);
    const double opt_rate = static_cast<double>(r[si][kOpt].collisions) /
                            static_cast<double>(r[si][kOpt].attempts);
    EXPECT_GT(noopt_rate, opt_rate) << "si=" << si;
  }
}

}  // namespace
}  // namespace dftmsn
