// Streaming-aggregation property suite: run_sweep_supervised folds each
// accepted RunResult into its point incrementally, so the aggregate must
// equal the whole-sweep reduce_results fold bit for bit — for every
// protocol variant and at jobs 1 vs 4 — while the streaming core's
// reorder buffer stays O(in-flight), never O(specs).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/supervisor.hpp"
#include "stats/summary.hpp"

namespace dftmsn {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& name) : path(name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

Config small_config(std::uint64_t seed) {
  Config c;
  c.scenario.num_sensors = 6;
  c.scenario.num_sinks = 1;
  c.scenario.field_m = 100.0;
  c.scenario.duration_s = 150.0;
  c.scenario.speed_max_mps = 4.0;
  c.scenario.seed = seed;
  return c;
}

/// Bit-level double equality: the determinism contract is about the
/// representation, not a tolerance.
bool same_bits(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

void expect_summary_bits(const Summary& a, const Summary& b,
                         const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_TRUE(same_bits(a.mean(), b.mean())) << what << " mean";
  EXPECT_TRUE(same_bits(a.ci95_half_width(), b.ci95_half_width()))
      << what << " ci95";
  EXPECT_TRUE(same_bits(a.min(), b.min())) << what << " min";
  EXPECT_TRUE(same_bits(a.max(), b.max())) << what << " max";
}

void expect_point_bits(const ReplicatedResult& a, const ReplicatedResult& b) {
  EXPECT_EQ(a.replications, b.replications);
  expect_summary_bits(a.delivery_ratio, b.delivery_ratio, "delivery_ratio");
  expect_summary_bits(a.mean_power_mw, b.mean_power_mw, "mean_power_mw");
  expect_summary_bits(a.mean_delay_s, b.mean_delay_s, "mean_delay_s");
  expect_summary_bits(a.overhead_bits_per_delivery,
                      b.overhead_bits_per_delivery, "overhead");
  expect_summary_bits(a.collisions, b.collisions, "collisions");
  expect_summary_bits(a.fairness_jain, b.fairness_jain, "fairness_jain");
}

TEST(StreamingAggregation, IncrementalFoldMatchesWholeSweepEveryProtocol) {
  const ProtocolKind kinds[] = {ProtocolKind::kOpt,     ProtocolKind::kNoOpt,
                                ProtocolKind::kNoSleep, ProtocolKind::kZbr,
                                ProtocolKind::kDirect,
                                ProtocolKind::kEpidemic};
  for (const ProtocolKind kind : kinds) {
    SCOPED_TRACE(protocol_kind_name(kind));
    std::vector<SweepPoint> points(2);
    points[0].config = small_config(60);
    points[0].kind = kind;
    points[1].config = small_config(75);
    points[1].config.scenario.num_sensors = 8;
    points[1].kind = kind;

    SupervisorOptions o1;
    o1.jobs = 1;
    const SupervisedSweep s1 = run_sweep_supervised(points, 3, o1);
    SupervisorOptions o4;
    o4.jobs = 4;
    const SupervisedSweep s4 = run_sweep_supervised(points, 3, o4);

    ASSERT_EQ(s1.points.size(), points.size());
    ASSERT_EQ(s4.points.size(), points.size());
    ASSERT_EQ(s1.manifest.completed(), 6);

    for (std::size_t p = 0; p < points.size(); ++p) {
      SCOPED_TRACE("point " + std::to_string(p));
      // The incremental fold must agree with a from-scratch fold over
      // the whole point's completed results, and across jobs values.
      std::vector<RunResult> batch;
      for (std::size_t r = 0; r < 3; ++r)
        batch.push_back(s1.manifest.specs[p * 3 + r].result);
      const ReplicatedResult whole = reduce_results(batch);
      expect_point_bits(s1.points[p], whole);
      expect_point_bits(s4.points[p], s1.points[p]);
    }
  }
}

TEST(StreamingAggregation, SinkSeesStrictIndexOrderExactlyOnce) {
  std::vector<RunSpec> specs(8);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].config = small_config(80 + i);
    specs[i].kind = ProtocolKind::kDirect;
  }

  for (const int jobs : {1, 4}) {
    SCOPED_TRACE("jobs " + std::to_string(jobs));
    SupervisorOptions opts;
    opts.jobs = jobs;
    std::vector<std::size_t> seen;
    const StreamStats stats = run_specs_streamed(
        specs, opts, [&](std::size_t i, SpecRecord&& rec) {
          seen.push_back(i);
          EXPECT_EQ(rec.status, SpecStatus::kCompleted);
        });
    ASSERT_EQ(seen.size(), specs.size());
    for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
    EXPECT_GE(stats.peak_buffered, 1u);
    EXPECT_LE(stats.peak_buffered, specs.size());
    if (jobs == 1) {
      EXPECT_EQ(stats.peak_buffered, 1u)
          << "a serial sweep must never retain more than the record in "
             "flight — streaming is the memory contract";
    }
  }
}

TEST(StreamingAggregation, StreamedManifestEqualsCollectedManifest) {
  // The streamed (scaffold + appended blocks + cumulative digests) file
  // must load back to exactly what the collecting wrapper returned, and
  // salvage of an already-clean file must be a no-op.
  TempDir dir("stream_manifest.tmp");
  std::vector<RunSpec> specs(3);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].config = small_config(90 + i);
    specs[i].kind = ProtocolKind::kDirect;
  }
  SupervisorOptions opts;
  opts.checkpoint_dir = dir.path;
  opts.jobs = 2;
  const SweepManifest manifest = run_specs_supervised(specs, opts);
  ASSERT_EQ(manifest.completed(), 3);

  SweepManifest loaded;
  ASSERT_TRUE(load_manifest(manifest_path(dir.path), &loaded));
  ASSERT_EQ(loaded.specs.size(), manifest.specs.size());
  for (std::size_t i = 0; i < loaded.specs.size(); ++i) {
    EXPECT_EQ(loaded.specs[i].status, manifest.specs[i].status);
    EXPECT_EQ(loaded.specs[i].retries, manifest.specs[i].retries);
    EXPECT_EQ(loaded.specs[i].config_digest, manifest.specs[i].config_digest);
    EXPECT_TRUE(same_bits(loaded.specs[i].result.delivery_ratio,
                          manifest.specs[i].result.delivery_ratio));
    EXPECT_EQ(loaded.specs[i].result.delivered,
              manifest.specs[i].result.delivered);
  }

  std::size_t removed = 123;
  EXPECT_TRUE(salvage_manifest_tail(manifest_path(dir.path), &removed));
  EXPECT_EQ(removed, 0u) << "salvage of a clean manifest must not cut";
}

}  // namespace
}  // namespace dftmsn
