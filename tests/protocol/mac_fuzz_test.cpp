// Adversarial frame-injection fuzz: a driver node sprays syntactically
// valid but protocol-nonsensical frames at a MAC (and a sink) in random
// order and timing. The MAC must never crash, wedge, or corrupt its
// queue, whatever arrives.
#include <gtest/gtest.h>

#include <memory>

#include "mobility/mobility_manager.hpp"
#include "node/sink_node.hpp"
#include "phy/channel.hpp"
#include "protocol/crosslayer_mac.hpp"
#include "protocol/protocol_factory.hpp"

namespace dftmsn {
namespace {

class NullListener : public ChannelListener {
 public:
  void on_frame_received(const Frame&) override {}
  void on_collision() override {}
  void on_channel_busy() override {}
  void on_channel_idle() override {}
};

class FuzzFixture {
 public:
  explicit FuzzFixture(std::uint64_t seed)
      : rngs_(seed),
        fuzz_(rngs_.stream("fuzz")),
        mobility_(sim_, cfg_.scenario.mobility_step_s),
        metrics_(0.0) {
    mobility_.add_node(0, std::make_unique<StaticMobility>(Vec2{0, 0}));
    mobility_.add_node(1, std::make_unique<StaticMobility>(Vec2{5, 0}));
    mobility_.add_node(2, std::make_unique<StaticMobility>(Vec2{5, 5}));
    channel_ = std::make_unique<Channel>(sim_, mobility_, cfg_.radio.range_m,
                                         cfg_.radio.bandwidth_bps);
    driver_radio_ = std::make_unique<Radio>(sim_, energy_,
                                            cfg_.radio.switch_time_s);
    channel_->attach(0, *driver_radio_, null_);
    victim_radio_ = std::make_unique<Radio>(sim_, energy_,
                                            cfg_.radio.switch_time_s);
    queue_ = std::make_unique<FtdQueue>(cfg_.protocol.queue_capacity);
    mac_ = std::make_unique<CrossLayerMac>(
        1, sim_, *channel_, *victim_radio_, *queue_,
        make_strategy(ProtocolKind::kOpt, cfg_), cfg_,
        make_mac_options(ProtocolKind::kOpt, cfg_), 2, metrics_,
        rngs_.stream("mac"));
    channel_->attach(1, *victim_radio_, *mac_);
    sink_ = std::make_unique<SinkNode>(2, sim_, *channel_, energy_, cfg_,
                                       metrics_, rngs_.stream("sink"));
    channel_->attach(2, sink_->radio(), *sink_);
    mobility_.start();
    mac_->start();
  }

  Frame random_frame() {
    const NodeId peer = static_cast<NodeId>(fuzz_.uniform_int(0, 3));
    const auto mid = static_cast<MessageId>(fuzz_.uniform_int(0, 5));
    switch (fuzz_.uniform_int(0, 5)) {
      case 0: return Frame{0, 50, PreambleFrame{}};
      case 1:
        return Frame{0, 50,
                     RtsFrame{fuzz_.uniform01(), fuzz_.uniform01(),
                              fuzz_.uniform_int(1, 8), mid}};
      case 2:
        return Frame{0, 50,
                     CtsFrame{peer, fuzz_.uniform01(),
                              static_cast<std::size_t>(
                                  fuzz_.uniform_int(0, 5))}};
      case 3: {
        ScheduleFrame s;
        const int n = fuzz_.uniform_int(0, 3);
        for (int i = 0; i < n; ++i) {
          s.entries.push_back(ScheduleEntry{
              static_cast<NodeId>(fuzz_.uniform_int(0, 3)),
              fuzz_.uniform01()});
        }
        s.nav_duration = fuzz_.uniform(0.0, 0.2);
        return Frame{0, 50, std::move(s)};
      }
      case 4: {
        Message m;
        m.id = mid;
        m.source = peer;
        m.created = sim_.now();
        return Frame{0, 1000, DataFrame{m}};
      }
      default: return Frame{0, 50, AckFrame{peer, mid}};
    }
  }

  void run(int frames) {
    for (int i = 0; i < frames; ++i) {
      // Fire when the driver's radio is free; otherwise skip this slot.
      if (driver_radio_->state() == RadioState::kIdle) {
        channel_->transmit(0, random_frame());
      }
      sim_.run_until(sim_.now() + fuzz_.uniform(0.001, 0.2));
    }
    sim_.run_until(sim_.now() + 5.0);  // let timers drain
  }

  void check_invariants() {
    ASSERT_LE(queue_->size(), queue_->capacity());
    for (const auto& item : queue_->items()) {
      ASSERT_GE(item.ftd, 0.0);
      ASSERT_LE(item.ftd, 1.0);
    }
    const double metric = mac_->strategy().local_metric();
    ASSERT_GE(metric, 0.0);
    ASSERT_LE(metric, 1.0);
    // The MAC must still be able to make progress: enqueue a real message
    // and verify it reaches the sink.
    Message m;
    m.id = 999'999;
    m.source = 1;
    m.created = sim_.now();
    metrics_.on_generated(m);
    mac_->enqueue(m);
    const auto before = metrics_.delivered_unique();
    sim_.run_until(sim_.now() + 120.0);
    EXPECT_GT(metrics_.delivered_unique(), before) << "MAC wedged after fuzz";
  }

  Config cfg_;
  Simulator sim_;
  EnergyModel energy_{PowerConfig{}};
  RandomSource rngs_;
  RandomStream fuzz_;
  MobilityManager mobility_;
  Metrics metrics_;
  NullListener null_;
  std::unique_ptr<Channel> channel_;
  std::unique_ptr<Radio> driver_radio_;
  std::unique_ptr<Radio> victim_radio_;
  std::unique_ptr<FtdQueue> queue_;
  std::unique_ptr<CrossLayerMac> mac_;
  std::unique_ptr<SinkNode> sink_;
};

class MacFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MacFuzz, SurvivesRandomFrameInjection) {
  FuzzFixture f(static_cast<std::uint64_t>(GetParam()));
  f.run(1500);
  f.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MacFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dftmsn
