// Stress / failure-injection suites: dense cliques (maximum contention),
// sparse starvation, mid-exchange sleepers, and long-horizon invariants.
#include <gtest/gtest.h>

#include "experiment/world.hpp"

namespace dftmsn {
namespace {

/// Dense clique: the whole population inside one radio disc. Every RTS
/// has many qualified receivers, CTS slots collide constantly, NAVs
/// overlap — the harshest contention the MAC can face.
TEST(Stress, DenseCliqueSurvivesAndDelivers) {
  Config c;
  c.scenario.num_sensors = 12;
  c.scenario.num_sinks = 1;
  c.scenario.field_m = 9.0;  // everyone within the 10 m range of everyone
  c.scenario.zones_per_side = 3;
  c.scenario.duration_s = 2000.0;
  c.scenario.data_interval_s = 60.0;
  c.scenario.seed = 3;

  World w(c, ProtocolKind::kOpt);
  w.run();
  const Metrics& m = w.metrics();
  ASSERT_GT(m.generated(), 0u);
  // With a sink inside the clique, delivery must be near-total despite
  // the contention.
  EXPECT_GT(m.delivery_ratio(), 0.8);
  EXPECT_LE(m.delivered_unique(), m.generated());
}

TEST(Stress, CliqueContentionProducesAndResolvesCollisions) {
  Config c;
  c.scenario.num_sensors = 10;
  c.scenario.num_sinks = 1;
  c.scenario.field_m = 9.0;
  c.scenario.zones_per_side = 3;
  c.scenario.duration_s = 1500.0;
  c.scenario.data_interval_s = 30.0;
  c.scenario.seed = 8;

  World w(c, ProtocolKind::kNoOpt);  // fixed small windows: collisions
  w.run();
  EXPECT_GT(w.channel().counters().collisions, 0u);
  EXPECT_GT(w.metrics().delivery_ratio(), 0.5);  // still functional
}

/// Ultra-sparse: nodes essentially never meet. Nothing should be
/// delivered, nothing should crash, and energy must be dominated by
/// sleeping (for the sleeping variants).
TEST(Stress, UltraSparseStarvation) {
  Config c;
  c.scenario.num_sensors = 5;
  c.scenario.num_sinks = 1;
  c.scenario.field_m = 2000.0;
  c.scenario.zones_per_side = 5;
  c.scenario.speed_min_mps = 0.0;
  c.scenario.speed_max_mps = 0.5;
  c.scenario.duration_s = 5000.0;
  c.scenario.seed = 4;

  World w(c, ProtocolKind::kOpt);
  w.run();
  EXPECT_LE(w.metrics().delivery_ratio(), 0.2);
  // Sleeping keeps a starved node far below the 13.5 mW idle floor.
  EXPECT_LT(w.mean_sensor_power_mw(), 8.0);
  for (auto& s : w.sensors()) {
    EXPECT_LE(s->queue().size(), s->queue().capacity());
  }
}

/// Tiny buffers + fast traffic: the overflow machinery runs hot; the
/// FTD-sorted drop policy must never drop below-capacity or corrupt the
/// ordering (asserted inside FtdQueue), and accounting must stay sane.
TEST(Stress, TinyBuffersOverflowAccounting) {
  Config c;
  c.scenario.num_sensors = 40;
  c.scenario.num_sinks = 2;
  c.scenario.duration_s = 4000.0;
  c.scenario.data_interval_s = 20.0;
  c.protocol.queue_capacity = 5;
  c.scenario.seed = 12;

  World w(c, ProtocolKind::kOpt);
  w.run();
  const Metrics& m = w.metrics();
  EXPECT_GT(m.drops(DropReason::kOverflow), 0u);
  EXPECT_LE(m.delivered_unique(), m.generated());
  EXPECT_GT(m.delivery_ratio(), 0.0);
}

/// Zero-speed population: pure static placement; only nodes that happen
/// to start near a sink (or near a chain into one) can deliver.
TEST(Stress, StaticPopulationOnlyLocalDelivery) {
  Config c;
  c.scenario.num_sensors = 60;
  c.scenario.num_sinks = 3;
  c.scenario.speed_min_mps = 0.0;
  c.scenario.speed_max_mps = 1e-6;
  c.scenario.duration_s = 4000.0;
  c.scenario.seed = 21;

  World w(c, ProtocolKind::kOpt);
  w.run();
  // Some—but not all—messages deliver: static gradients form chains.
  EXPECT_GT(w.metrics().delivery_ratio(), 0.0);
  EXPECT_LT(w.metrics().delivery_ratio(), 0.9);
}

/// Very long horizon at small scale: leak/regression guard for the event
/// loop (cancelled handles, timer churn) and the metric accumulators.
TEST(Stress, LongHorizonSmallWorld) {
  Config c;
  c.scenario.num_sensors = 10;
  c.scenario.num_sinks = 1;
  c.scenario.duration_s = 100'000.0;
  c.scenario.seed = 30;

  World w(c, ProtocolKind::kOpt);
  w.run();
  EXPECT_GT(w.sim().events_executed(), 10'000u);
  EXPECT_GT(w.metrics().delivery_ratio(), 0.3);
}

}  // namespace
}  // namespace dftmsn
