// Unit tests of the forwarding strategies, isolated from the MAC.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "core/ftd_queue.hpp"
#include "protocol/direct_strategy.hpp"
#include "protocol/epidemic_strategy.hpp"
#include "protocol/ftd_strategy.hpp"
#include "protocol/history_strategy.hpp"
#include "protocol/spray_strategy.hpp"
#include "protocol/protocol_factory.hpp"

namespace dftmsn {
namespace {

ProtocolConfig proto_cfg() {
  ProtocolConfig p;
  p.alpha = 0.25;
  p.delivery_threshold_r = 0.9;
  p.xi_update_cooldown_s = 30.0;
  return p;
}

QueuedMessage qmsg(MessageId id, double ftd) {
  Message m;
  m.id = id;
  return QueuedMessage{m, ftd, 0.0};
}

ScheduledReceiver recv(NodeId id, double metric, bool sink = false) {
  return ScheduledReceiver{id, metric, 0.0, sink};
}

// ---------------------------------------------------------------- FTD --

TEST(FtdStrategy, StartsAtZeroMetric) {
  FtdStrategy s(proto_cfg());
  EXPECT_DOUBLE_EQ(s.local_metric(), 0.0);
}

TEST(FtdStrategy, QualificationRequiresStrictlyHigherMetricAndSpace) {
  FtdStrategy s(proto_cfg());
  FtdQueue q(4);
  // Both at 0: no strict dominance -> not qualified.
  EXPECT_FALSE(s.qualifies_as_receiver({0, 0.0, 0.0, 1}, q));
  // Raise our metric via a sink transmission.
  s.on_transmission_complete(0.0, {recv(9, 1.0, true)}, 100.0);
  EXPECT_GT(s.local_metric(), 0.0);
  EXPECT_TRUE(s.qualifies_as_receiver({0, 0.0, 0.0, 1}, q));
  // Sender with even higher metric: not qualified.
  EXPECT_FALSE(s.qualifies_as_receiver({0, 0.99, 0.0, 1}, q));
}

TEST(FtdStrategy, QualificationChecksBufferSpaceAtFtd) {
  FtdStrategy s(proto_cfg());
  s.on_transmission_complete(0.0, {recv(9, 1.0, true)}, 100.0);
  FtdQueue q(2);
  q.insert(qmsg(1, 0.0));
  q.insert(qmsg(2, 0.0));
  // Full of FTD-0 messages: no room for another FTD-0 copy...
  EXPECT_FALSE(s.qualifies_as_receiver({0, 0.0, 0.0, 3}, q));
  // ...but a copy *more important* than a queued one could displace it —
  // B(F) counts slots with FTD > F as available.
  FtdQueue q2(2);
  q2.insert(qmsg(1, 0.5));
  q2.insert(qmsg(2, 0.6));
  EXPECT_TRUE(s.qualifies_as_receiver({0, 0.0, 0.2, 3}, q2));
}

TEST(FtdStrategy, SelectReceiversUsesGreedyThreshold) {
  FtdStrategy s(proto_cfg());
  const std::vector<Candidate> cands{{1, 1.0, 5, true}, {2, 0.5, 5, false}};
  const auto sel = s.select_receivers(0.0, cands);
  ASSERT_EQ(sel.size(), 1u);  // sink alone crosses R
  EXPECT_EQ(sel[0].id, 1u);
  EXPECT_TRUE(sel[0].is_sink);
}

TEST(FtdStrategy, ScheduledFtdsFollowEq2) {
  FtdStrategy s(proto_cfg());
  const std::vector<Candidate> cands{{1, 0.5, 5, false}, {2, 0.4, 5, false}};
  const auto sel = s.select_receivers(0.0, cands);
  ASSERT_EQ(sel.size(), 2u);
  // ξ_i = 0: F_1 covers the other receiver only: 1 - (1-0)(1-0)(1-0.4).
  EXPECT_DOUBLE_EQ(sel[0].ftd_for_copy, 0.4);
  EXPECT_DOUBLE_EQ(sel[1].ftd_for_copy, 0.5);
}

TEST(FtdStrategy, TransmissionUpdatesMetricWithCooldown) {
  FtdStrategy s(proto_cfg());
  s.on_transmission_complete(0.0, {recv(9, 1.0, true)}, 100.0);
  const double after_first = s.local_metric();
  EXPECT_DOUBLE_EQ(after_first, 0.25);
  // Within the 30 s cooldown: metric frozen.
  s.on_transmission_complete(0.0, {recv(9, 1.0, true)}, 110.0);
  EXPECT_DOUBLE_EQ(s.local_metric(), after_first);
  // Past the cooldown: second EWMA step.
  s.on_transmission_complete(0.0, {recv(9, 1.0, true)}, 140.0);
  EXPECT_DOUBLE_EQ(s.local_metric(), 0.4375);
}

TEST(FtdStrategy, OutcomeFollowsEq3AndKeepsCopy) {
  FtdStrategy s(proto_cfg());
  const auto out =
      s.on_transmission_complete(0.2, {recv(1, 0.5), recv(2, 0.4)}, 50.0);
  EXPECT_EQ(out.disposition, TransmissionOutcome::Disposition::kKeep);
  EXPECT_DOUBLE_EQ(out.new_ftd, 1.0 - 0.8 * 0.5 * 0.6);
}

TEST(FtdStrategy, EmptyAckKeepsFtdUnchanged) {
  FtdStrategy s(proto_cfg());
  const auto out = s.on_transmission_complete(0.3, {}, 50.0);
  EXPECT_EQ(out.disposition, TransmissionOutcome::Disposition::kKeep);
  EXPECT_DOUBLE_EQ(out.new_ftd, 0.3);
  EXPECT_DOUBLE_EQ(s.local_metric(), 0.0);  // no update without receivers
}

TEST(FtdStrategy, IdleTimeoutDecays) {
  FtdStrategy s(proto_cfg());
  s.on_transmission_complete(0.0, {recv(9, 1.0, true)}, 100.0);
  const double before = s.local_metric();
  s.on_idle_timeout();
  EXPECT_DOUBLE_EQ(s.local_metric(), 0.75 * before);
}

// ------------------------------------------------------------- History --

TEST(HistoryStrategy, TiesQualifyZeroHistoryNodes) {
  HistoryStrategy s(proto_cfg());
  FtdQueue q(4);
  EXPECT_TRUE(s.qualifies_as_receiver({0, 0.0, 0.0, 1}, q));
  // But a sender with higher history is not served by us (we are lower).
  EXPECT_FALSE(s.qualifies_as_receiver({0, 0.5, 0.0, 1}, q));
}

TEST(HistoryStrategy, DuplicateCopyNotAccepted) {
  HistoryStrategy s(proto_cfg());
  FtdQueue q(4);
  q.insert(qmsg(7, 0.0));
  EXPECT_FALSE(s.qualifies_as_receiver({0, 0.0, 0.0, 7}, q));
  EXPECT_TRUE(s.qualifies_as_receiver({0, 0.0, 0.0, 8}, q));
}

TEST(HistoryStrategy, ReplicatesToAllQualifiedResponders) {
  HistoryStrategy s(proto_cfg());
  const std::vector<Candidate> cands{
      {1, 0.0, 5, false}, {2, 0.4, 5, false}, {3, 1.0, 5, true},
      {4, 0.2, 0, false}};  // no buffer -> skipped
  const auto sel = s.select_receivers(0.0, cands);
  ASSERT_EQ(sel.size(), 3u);
}

TEST(HistoryStrategy, HistoryRisesOnlyOnDirectSinkDelivery) {
  HistoryStrategy s(proto_cfg());
  s.on_transmission_complete(0.0, {recv(1, 0.5, false)}, 100.0);
  EXPECT_DOUBLE_EQ(s.local_metric(), 0.0);  // relay handoff: no history
  s.on_transmission_complete(0.0, {recv(2, 1.0, true)}, 200.0);
  EXPECT_DOUBLE_EQ(s.local_metric(), 0.25);
}

TEST(HistoryStrategy, CopyReleasedOnlyToSink) {
  HistoryStrategy s(proto_cfg());
  EXPECT_EQ(s.on_transmission_complete(0.0, {recv(1, 0.4, false)}, 1.0)
                .disposition,
            TransmissionOutcome::Disposition::kKeep);
  EXPECT_EQ(s.on_transmission_complete(0.0, {recv(2, 1.0, true)}, 2.0)
                .disposition,
            TransmissionOutcome::Disposition::kRemove);
}

TEST(HistoryStrategy, ReceiveFtdIsZero) {
  HistoryStrategy s(proto_cfg());
  EXPECT_DOUBLE_EQ(s.receive_ftd(0.8), 0.0);
}

// -------------------------------------------------------------- Direct --

TEST(DirectStrategy, NeverQualifiesAsRelay) {
  DirectStrategy s;
  FtdQueue q(4);
  EXPECT_FALSE(s.qualifies_as_receiver({0, 0.0, 0.0, 1}, q));
  EXPECT_DOUBLE_EQ(s.local_metric(), 0.0);
}

TEST(DirectStrategy, SelectsOnlySinks) {
  DirectStrategy s;
  const std::vector<Candidate> cands{{1, 0.9, 5, false}, {2, 1.0, 5, true}};
  const auto sel = s.select_receivers(0.0, cands);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_EQ(sel[0].id, 2u);
  EXPECT_TRUE(s.select_receivers(0.0, {{1, 0.9, 5, false}}).empty());
}

TEST(DirectStrategy, RemovesOnlyOnSinkAck) {
  DirectStrategy s;
  EXPECT_EQ(s.on_transmission_complete(0.0, {recv(2, 1.0, true)}, 0.0)
                .disposition,
            TransmissionOutcome::Disposition::kRemove);
  EXPECT_EQ(s.on_transmission_complete(0.0, {}, 0.0).disposition,
            TransmissionOutcome::Disposition::kKeep);
}

// ------------------------------------------------------------ Epidemic --

TEST(EpidemicStrategy, QualifiesUnlessDuplicateOrFull) {
  EpidemicStrategy s;
  FtdQueue q(2);
  EXPECT_TRUE(s.qualifies_as_receiver({0, 0.5, 0.0, 1}, q));
  q.insert(qmsg(1, 0.0));
  EXPECT_FALSE(s.qualifies_as_receiver({0, 0.5, 0.0, 1}, q));  // duplicate
  q.insert(qmsg(2, 0.0));
  EXPECT_FALSE(s.qualifies_as_receiver({0, 0.5, 0.0, 3}, q));  // full
}

TEST(EpidemicStrategy, FloodsToEveryone) {
  EpidemicStrategy s;
  const std::vector<Candidate> cands{
      {1, 0.5, 5, false}, {2, 0.5, 5, false}, {3, 1.0, 5, true}};
  EXPECT_EQ(s.select_receivers(0.0, cands).size(), 3u);
}

TEST(EpidemicStrategy, ReleasesCopyOnSinkAck) {
  EpidemicStrategy s;
  EXPECT_EQ(
      s.on_transmission_complete(0.0, {recv(1, 0.5, false)}, 0.0).disposition,
      TransmissionOutcome::Disposition::kKeep);
  EXPECT_EQ(
      s.on_transmission_complete(0.0, {recv(3, 1.0, true)}, 0.0).disposition,
      TransmissionOutcome::Disposition::kRemove);
}


// --------------------------------------------------------------- Spray --

TEST(SprayStrategy, SprayPhaseAcceptsWaitPhaseDeclines) {
  SprayStrategy s;
  FtdQueue q(4);
  // Spray-phase RTS (ftd below the carrier marker): qualified.
  EXPECT_TRUE(s.qualifies_as_receiver({0, 0.5, 0.0, 1}, q));
  // Wait-phase RTS: sensors decline (only sinks take carrier copies).
  EXPECT_FALSE(s.qualifies_as_receiver(
      {0, 0.5, SprayStrategy::kCarrierFtd, 1}, q));
  // Duplicate copy: declined.
  Message m;
  m.id = 1;
  q.insert(QueuedMessage{m, 0.0, 0.0});
  EXPECT_FALSE(s.qualifies_as_receiver({0, 0.5, 0.0, 1}, q));
}

TEST(SprayStrategy, SinkShortCircuitsSelection) {
  SprayStrategy s;
  const std::vector<Candidate> cands{{1, 0.5, 5, false}, {2, 1.0, 5, true}};
  const auto sel = s.select_receivers(0.0, cands);
  ASSERT_EQ(sel.size(), 1u);
  EXPECT_TRUE(sel[0].is_sink);
}

TEST(SprayStrategy, WaitPhaseSelectsNothingWithoutSink) {
  SprayStrategy s;
  const std::vector<Candidate> cands{{1, 0.5, 5, false}, {2, 0.5, 5, false}};
  EXPECT_TRUE(
      s.select_receivers(SprayStrategy::kCarrierFtd, cands).empty());
}

TEST(SprayStrategy, SprayBudgetLimitsCopies) {
  SprayStrategy s;
  std::vector<Candidate> many;
  for (NodeId i = 1; i <= 20; ++i) many.push_back({i, 0.5, 5, false});
  const auto sel = s.select_receivers(0.0, many);
  // Budget: ~kCarrierFtd / kSprayStep + 1 copies at most.
  EXPECT_LE(sel.size(), 7u);
  EXPECT_GE(sel.size(), 5u);
  for (const auto& r : sel)
    EXPECT_DOUBLE_EQ(r.ftd_for_copy, SprayStrategy::kCarrierFtd);
}

TEST(SprayStrategy, BudgetDrainsAcrossRounds) {
  SprayStrategy s;
  double ftd = 0.0;
  int sprayed = 0;
  std::vector<Candidate> two{{1, 0.5, 5, false}, {2, 0.5, 5, false}};
  for (int round = 0; round < 10; ++round) {
    const auto sel = s.select_receivers(ftd, two);
    if (sel.empty()) break;
    sprayed += static_cast<int>(sel.size());
    const auto out = s.on_transmission_complete(ftd, sel, 0.0);
    EXPECT_EQ(out.disposition, TransmissionOutcome::Disposition::kKeep);
    ftd = out.new_ftd;
  }
  EXPECT_LE(sprayed, 8);
  EXPECT_DOUBLE_EQ(ftd, SprayStrategy::kCarrierFtd);  // wait phase reached
}

TEST(SprayStrategy, SinkAckReleasesCopy) {
  SprayStrategy s;
  const auto out = s.on_transmission_complete(
      0.2, {ScheduledReceiver{9, 1.0, 1.0, true}}, 0.0);
  EXPECT_EQ(out.disposition, TransmissionOutcome::Disposition::kRemove);
}

TEST(SprayStrategy, ReceivedCopiesAreCarriers) {
  SprayStrategy s;
  EXPECT_DOUBLE_EQ(s.receive_ftd(0.0), SprayStrategy::kCarrierFtd);
}

// -------------------------------------------------------------- Factory --

TEST(ProtocolFactory, MakesStrategyPerKind) {
  const Config c;
  for (auto kind :
       {ProtocolKind::kOpt, ProtocolKind::kNoOpt, ProtocolKind::kNoSleep,
        ProtocolKind::kZbr, ProtocolKind::kDirect, ProtocolKind::kEpidemic,
        ProtocolKind::kSwim}) {
    EXPECT_NE(make_strategy(kind, c), nullptr);
  }
}

TEST(ProtocolFactory, OptionsMatchVariantSemantics) {
  const Config c;
  const MacOptions opt = make_mac_options(ProtocolKind::kOpt, c);
  EXPECT_TRUE(opt.sleeping_enabled);
  EXPECT_TRUE(opt.adaptive_sleep);
  EXPECT_TRUE(opt.adaptive_contention);

  const MacOptions noopt = make_mac_options(ProtocolKind::kNoOpt, c);
  EXPECT_TRUE(noopt.sleeping_enabled);
  EXPECT_FALSE(noopt.adaptive_sleep);
  EXPECT_FALSE(noopt.adaptive_contention);

  const MacOptions nosleep = make_mac_options(ProtocolKind::kNoSleep, c);
  EXPECT_FALSE(nosleep.sleeping_enabled);
  EXPECT_TRUE(nosleep.adaptive_contention);
}

TEST(ProtocolFactory, ParseNames) {
  EXPECT_EQ(parse_protocol_kind("OPT"), ProtocolKind::kOpt);
  EXPECT_EQ(parse_protocol_kind("noopt"), ProtocolKind::kNoOpt);
  EXPECT_EQ(parse_protocol_kind("NoSleep"), ProtocolKind::kNoSleep);
  EXPECT_EQ(parse_protocol_kind("zbr"), ProtocolKind::kZbr);
  EXPECT_EQ(parse_protocol_kind("DIRECT"), ProtocolKind::kDirect);
  EXPECT_EQ(parse_protocol_kind("epidemic"), ProtocolKind::kEpidemic);
  EXPECT_EQ(parse_protocol_kind("swim"), ProtocolKind::kSwim);
  EXPECT_FALSE(parse_protocol_kind("bogus").has_value());
}

TEST(ProtocolFactory, KindNames) {
  EXPECT_STREQ(protocol_kind_name(ProtocolKind::kOpt), "OPT");
  EXPECT_STREQ(protocol_kind_name(ProtocolKind::kZbr), "ZBR");
}

}  // namespace
}  // namespace dftmsn
