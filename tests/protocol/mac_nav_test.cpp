// NAV and contention-window behaviour of the MAC: overhearers defer past
// scheduled exchanges, unqualified receivers sit out the CTS window, and
// same-slot CTS replies collide at the sender (the Eq. 14 scenario).
#include <gtest/gtest.h>

#include <memory>

#include "mobility/mobility_manager.hpp"
#include "node/sink_node.hpp"
#include "phy/channel.hpp"
#include "protocol/crosslayer_mac.hpp"
#include "protocol/protocol_factory.hpp"

namespace dftmsn {
namespace {

/// Sender S(0) at the origin; two potential receivers R1(1), R2(2) placed
/// symmetric around S but OUT of range of each other (hidden pair); sink
/// far away so receivers qualify only by metric.
class NavWorld {
 public:
  explicit NavWorld(Config cfg = Config{})
      : cfg_(std::move(cfg)),
        energy_(cfg_.power),
        rngs_(17),
        mobility_(sim_, cfg_.scenario.mobility_step_s),
        metrics_(0.0) {
    // S at origin; R1 at (-8,0), R2 at (8,0): both hear S, not each other.
    mobility_.add_node(0, std::make_unique<StaticMobility>(Vec2{0, 0}));
    mobility_.add_node(1, std::make_unique<StaticMobility>(Vec2{-8, 0}));
    mobility_.add_node(2, std::make_unique<StaticMobility>(Vec2{8, 0}));
    mobility_.add_node(3, std::make_unique<StaticMobility>(Vec2{0, 9}));
    channel_ = std::make_unique<Channel>(sim_, mobility_, cfg_.radio.range_m,
                                         cfg_.radio.bandwidth_bps);
    for (NodeId i = 0; i < 3; ++i) {
      radios_.push_back(
          std::make_unique<Radio>(sim_, energy_, cfg_.radio.switch_time_s));
      queues_.push_back(
          std::make_unique<FtdQueue>(cfg_.protocol.queue_capacity));
      macs_.push_back(std::make_unique<CrossLayerMac>(
          i, sim_, *channel_, *radios_[i], *queues_[i],
          make_strategy(ProtocolKind::kOpt, cfg_), cfg_,
          make_mac_options(ProtocolKind::kOpt, cfg_), 3, metrics_,
          rngs_.stream("mac", i)));
      channel_->attach(i, *radios_[i], *macs_[i]);
    }
    sink_ = std::make_unique<SinkNode>(3, sim_, *channel_, energy_, cfg_,
                                       metrics_, rngs_.stream("sink"));
    channel_->attach(3, sink_->radio(), *sink_);
    mobility_.start();
    for (auto& m : macs_) m->start();
  }

  Message msg(MessageId id, NodeId src) {
    Message m;
    m.id = id;
    m.source = src;
    m.created = sim_.now();
    metrics_.on_generated(m);
    return m;
  }

  Config cfg_;
  Simulator sim_;
  EnergyModel energy_;
  RandomSource rngs_;
  MobilityManager mobility_;
  Metrics metrics_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::vector<std::unique_ptr<FtdQueue>> queues_;
  std::vector<std::unique_ptr<CrossLayerMac>> macs_;
  std::unique_ptr<SinkNode> sink_;
};

TEST(MacNav, HiddenReceiversCtsCollisionsAreResolvedEventually) {
  NavWorld w;
  // Give R1 and R2 a metric boost so both qualify for S's RTS: the sink
  // at (0,9) is in range of S only... it is at distance 9 from S, ~12
  // from R1/R2 — so only S can deliver directly. Instead, boost via
  // direct enqueue + contact: simply let S send; with both receivers at
  // metric 0 nobody qualifies, so deliveries flow S -> sink. This test
  // therefore exercises the sink-as-receiver path under hidden-terminal
  // CTS contention (sink + nobody else).
  for (MessageId id = 1; id <= 20; ++id)
    w.macs_[0]->enqueue(w.msg(id, 0));
  w.sim_.run_until(120.0);
  // All messages reach the sink despite hidden neighbours occasionally
  // answering nothing / colliding.
  EXPECT_EQ(w.metrics_.delivered_unique(), 20u);
}

TEST(MacNav, OverhearingNeighborsDeferDuringExchange) {
  NavWorld w;
  // R1 also has traffic, but S grabs the channel first; R1 must still
  // get its share afterwards (no starvation).
  for (MessageId id = 1; id <= 10; ++id) w.macs_[0]->enqueue(w.msg(id, 0));
  w.sim_.run_until(1.0);
  for (MessageId id = 100; id <= 105; ++id)
    w.macs_[1]->enqueue(w.msg(id, 1));
  w.sim_.run_until(600.0);
  // S's messages deliver (sink in range); R1's cannot (sink out of its
  // range, S has metric below... S gains metric, so R1 -> S -> sink works
  // eventually). The essential assertion: attempts from R1 happened and
  // the channel was shared.
  EXPECT_EQ(w.metrics_.delivered_unique(), 16u);
}

TEST(MacNav, SenderFailsCleanlyWithNoReceivers) {
  Config cfg;
  NavWorld w(cfg);
  // Push the sink out of everyone's range by moving... instead use R1 as
  // the sender: its only neighbour is S (metric 0 -> unqualified) and no
  // sink in range: every attempt must fail without wedging the MAC.
  for (MessageId id = 1; id <= 3; ++id) w.macs_[1]->enqueue(w.msg(id, 1));
  w.sim_.run_until(60.0);
  EXPECT_EQ(w.metrics_.delivered_unique(), 0u);
  EXPECT_GT(w.metrics_.failed_attempts(), 0u);
  EXPECT_EQ(w.queues_[1]->size(), 3u);
  // The MAC is still live (idle or sleeping, not stuck mid-cycle).
  const MacState st = w.macs_[1]->state();
  EXPECT_TRUE(st == MacState::kIdle || st == MacState::kSleeping ||
              st == MacState::kListening || st == MacState::kRxAwaitRts)
      << mac_state_name(st);
}

}  // namespace
}  // namespace dftmsn
