// Integration tests of the two-phase MAC over a real channel, with
// hand-placed static nodes (no Poisson traffic, no mobility motion).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mobility/mobility_manager.hpp"
#include "node/sink_node.hpp"
#include "phy/channel.hpp"
#include "protocol/crosslayer_mac.hpp"
#include "protocol/protocol_factory.hpp"

namespace dftmsn {
namespace {

/// Builds a static micro-world: `sensor_positions` sensors followed by
/// `sink_positions` sinks, all wired to one channel.
class MacWorld {
 public:
  MacWorld(std::vector<Vec2> sensor_positions, std::vector<Vec2> sink_positions,
           ProtocolKind kind = ProtocolKind::kOpt, Config config = Config{})
      : cfg_(std::move(config)),
        energy_(cfg_.power),
        rngs_(42),
        mobility_(sim_, cfg_.scenario.mobility_step_s),
        metrics_(0.0) {
    const auto n = sensor_positions.size();
    for (NodeId i = 0; i < sensor_positions.size() + sink_positions.size();
         ++i) {
      const Vec2 pos = i < n ? sensor_positions[i]
                             : sink_positions[i - n];
      mobility_.add_node(i, std::make_unique<StaticMobility>(pos));
    }
    channel_ = std::make_unique<Channel>(sim_, mobility_, cfg_.radio.range_m,
                                         cfg_.radio.bandwidth_bps);
    const NodeId first_sink = static_cast<NodeId>(n);
    for (NodeId i = 0; i < n; ++i) {
      radios_.push_back(std::make_unique<Radio>(sim_, energy_,
                                                cfg_.radio.switch_time_s));
      queues_.push_back(std::make_unique<FtdQueue>(cfg_.protocol.queue_capacity));
      macs_.push_back(std::make_unique<CrossLayerMac>(
          i, sim_, *channel_, *radios_[i], *queues_[i],
          make_strategy(kind, cfg_), cfg_, make_mac_options(kind, cfg_),
          first_sink, metrics_, rngs_.stream("mac", i)));
      channel_->attach(i, *radios_[i], *macs_[i]);
    }
    for (NodeId s = 0; s < sink_positions.size(); ++s) {
      const NodeId id = first_sink + s;
      sinks_.push_back(std::make_unique<SinkNode>(
          id, sim_, *channel_, energy_, cfg_, metrics_,
          rngs_.stream("sink", id)));
      channel_->attach(id, sinks_.back()->radio(), *sinks_.back());
    }
  }

  void start() {
    mobility_.start();
    for (auto& m : macs_) m->start();
  }

  Message make_message(MessageId id, NodeId source) {
    Message m;
    m.id = id;
    m.source = source;
    m.created = sim_.now();
    m.bits = cfg_.radio.data_bits;
    metrics_.on_generated(m);
    return m;
  }

  Config cfg_;
  Simulator sim_;
  EnergyModel energy_;
  RandomSource rngs_;
  MobilityManager mobility_;
  Metrics metrics_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::vector<std::unique_ptr<FtdQueue>> queues_;
  std::vector<std::unique_ptr<CrossLayerMac>> macs_;
  std::vector<std::unique_ptr<SinkNode>> sinks_;
};

TEST(MacIntegration, DirectDeliveryToAdjacentSink) {
  MacWorld w({{0, 0}}, {{5, 0}});
  w.start();
  w.macs_[0]->enqueue(w.make_message(1, 0));
  w.sim_.run_until(30.0);

  EXPECT_EQ(w.metrics_.delivered_unique(), 1u);
  EXPECT_TRUE(w.queues_[0]->empty());  // FTD hit 1 -> dropped as delivered
  EXPECT_DOUBLE_EQ(w.macs_[0]->strategy().local_metric(), 0.25);
  EXPECT_GE(w.metrics_.data_transmissions(), 1u);
}

TEST(MacIntegration, SinkOutOfRangeNothingDelivered) {
  MacWorld w({{0, 0}}, {{50, 0}});
  w.start();
  w.macs_[0]->enqueue(w.make_message(1, 0));
  w.sim_.run_until(30.0);
  EXPECT_EQ(w.metrics_.delivered_unique(), 0u);
  EXPECT_EQ(w.queues_[0]->size(), 1u);  // message retained
  EXPECT_GT(w.metrics_.failed_attempts(), 0u);
}

TEST(MacIntegration, RelayThroughGradient) {
  // A(0) -- B(8) -- sink(16): A cannot reach the sink directly; B must
  // first bootstrap its own xi by delivering its own message, after which
  // it qualifies as A's receiver.
  MacWorld w({{0, 0}, {8, 0}}, {{16, 0}});
  w.start();
  w.macs_[1]->enqueue(w.make_message(1, 1));  // B's own message
  w.macs_[0]->enqueue(w.make_message(2, 0));  // A's message
  // The horizon covers many duty-cycle periods: with both nodes sleeping
  // most of the time, the A->B rendezvous is stochastic (~100 s typical).
  w.sim_.run_until(800.0);

  EXPECT_EQ(w.metrics_.delivered_unique(), 2u);
  EXPECT_GT(w.macs_[0]->strategy().local_metric(), 0.0);
  // A's copy may persist (FTD below threshold) but B must have relayed.
  EXPECT_GE(w.macs_[1]->stats().data_received, 1u);
}

TEST(MacIntegration, NeighborTablePopulatedFromOverheardFrames) {
  MacWorld w({{0, 0}, {5, 0}}, {{10, 3}});
  w.start();
  w.macs_[0]->enqueue(w.make_message(1, 0));
  w.sim_.run_until(30.0);
  // Node 1 overheard node 0's RTS (and the sink's CTS).
  EXPECT_GE(w.macs_[1]->neighbors().live_count(w.sim_.now()), 1u);
}

TEST(MacIntegration, IdleNodeWithSleepingGoesToSleep) {
  MacWorld w({{0, 0}}, {{50, 0}});
  w.start();
  w.sim_.run_until(60.0);  // empty queue for many idle cycles
  EXPECT_GE(w.macs_[0]->stats().sleeps, 1u);
  // Energy: must have spent real time asleep.
  w.radios_[0]->finalize_energy(w.sim_.now());
  EXPECT_GT(w.radios_[0]->meter().seconds_in(RadioState::kSleep), 10.0);
}

TEST(MacIntegration, NoSleepVariantStaysAwake) {
  MacWorld w({{0, 0}}, {{50, 0}}, ProtocolKind::kNoSleep);
  w.start();
  w.sim_.run_until(60.0);
  EXPECT_EQ(w.macs_[0]->stats().sleeps, 0u);
  w.radios_[0]->finalize_energy(w.sim_.now());
  EXPECT_DOUBLE_EQ(w.radios_[0]->meter().seconds_in(RadioState::kSleep), 0.0);
}

TEST(MacIntegration, EnqueueOverflowRecordsDrop) {
  Config cfg;
  cfg.protocol.queue_capacity = 2;
  MacWorld w({{0, 0}}, {{50, 0}}, ProtocolKind::kOpt, cfg);
  w.start();
  w.macs_[0]->enqueue(w.make_message(1, 0));
  w.macs_[0]->enqueue(w.make_message(2, 0));
  w.macs_[0]->enqueue(w.make_message(3, 0));
  EXPECT_EQ(w.metrics_.drops(DropReason::kOverflow), 1u);
  EXPECT_EQ(w.queues_[0]->size(), 2u);
}

TEST(MacIntegration, TwoContendersShareOneSink) {
  MacWorld w({{0, 0}, {4, 0}}, {{5, 3}});
  w.start();
  for (MessageId id = 1; id <= 5; ++id) {
    w.macs_[0]->enqueue(w.make_message(id, 0));
    w.macs_[1]->enqueue(w.make_message(100 + id, 1));
  }
  w.sim_.run_until(120.0);
  // Both queues drain through the shared sink despite contention.
  EXPECT_EQ(w.metrics_.delivered_unique(), 10u);
}

TEST(MacIntegration, ZbrUnicastHandoffReleasesCopyOnlyAtSink) {
  MacWorld w({{0, 0}, {8, 0}}, {{16, 0}}, ProtocolKind::kZbr);
  w.start();
  w.macs_[1]->enqueue(w.make_message(1, 1));  // B delivers directly: h > 0
  w.sim_.run_until(100.0);
  w.macs_[0]->enqueue(w.make_message(2, 0));
  w.sim_.run_until(1200.0);
  EXPECT_EQ(w.metrics_.delivered_unique(), 2u);
}

TEST(MacIntegration, DirectVariantNeverRelays) {
  MacWorld w({{0, 0}, {8, 0}}, {{16, 0}}, ProtocolKind::kDirect);
  w.start();
  w.macs_[1]->enqueue(w.make_message(1, 1));
  w.macs_[0]->enqueue(w.make_message(2, 0));
  w.sim_.run_until(300.0);
  // B's message reaches the adjacent sink; A's cannot (no relaying).
  EXPECT_EQ(w.metrics_.delivered_unique(), 1u);
  EXPECT_EQ(w.macs_[1]->stats().data_received, 0u);
  EXPECT_EQ(w.queues_[0]->size(), 1u);
}

TEST(MacIntegration, MacStateNamesCover) {
  EXPECT_STREQ(mac_state_name(MacState::kIdle), "IDLE");
  EXPECT_STREQ(mac_state_name(MacState::kSleeping), "SLEEPING");
  EXPECT_STREQ(mac_state_name(MacState::kCollectCts), "COLLECT_CTS");
}

}  // namespace
}  // namespace dftmsn
