#include "protocol/neighbor_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dftmsn {
namespace {

TEST(NeighborTable, InvalidTtlThrows) {
  EXPECT_THROW(NeighborTable(0.0), std::invalid_argument);
}

TEST(NeighborTable, ObserveAndQuery) {
  NeighborTable t(60.0);
  t.observe(1, 0.3, 10.0);
  t.observe(2, 0.7, 10.0);
  EXPECT_EQ(t.live_count(10.0), 2u);
  auto metrics = t.live_metrics(10.0);
  std::sort(metrics.begin(), metrics.end());
  EXPECT_DOUBLE_EQ(metrics[0], 0.3);
  EXPECT_DOUBLE_EQ(metrics[1], 0.7);
}

TEST(NeighborTable, ReobservingRefreshes) {
  NeighborTable t(60.0);
  t.observe(1, 0.3, 0.0);
  t.observe(1, 0.9, 50.0);
  EXPECT_EQ(t.live_count(100.0), 1u);
  EXPECT_DOUBLE_EQ(t.live_metrics(100.0)[0], 0.9);
}

TEST(NeighborTable, EntriesExpireAfterTtl) {
  NeighborTable t(60.0);
  t.observe(1, 0.3, 0.0);
  EXPECT_EQ(t.live_count(60.0), 1u);  // boundary inclusive
  EXPECT_EQ(t.live_count(60.1), 0u);
  EXPECT_TRUE(t.live_metrics(61.0).empty());
}

TEST(NeighborTable, CountBetterThanIsStrict) {
  NeighborTable t(60.0);
  t.observe(1, 0.3, 0.0);
  t.observe(2, 0.5, 0.0);
  t.observe(3, 0.7, 0.0);
  EXPECT_EQ(t.count_better_than(0.5, 10.0), 1u);
  EXPECT_EQ(t.count_better_than(0.2, 10.0), 3u);
  EXPECT_EQ(t.count_better_than(0.9, 10.0), 0u);
}

TEST(NeighborTable, ExpirePurgesStorage) {
  NeighborTable t(60.0);
  t.observe(1, 0.3, 0.0);
  t.observe(2, 0.5, 100.0);
  t.expire(100.0);
  EXPECT_EQ(t.live_count(100.0), 1u);
  // Re-adding the purged entry works.
  t.observe(1, 0.4, 100.0);
  EXPECT_EQ(t.live_count(100.0), 2u);
}

}  // namespace
}  // namespace dftmsn
