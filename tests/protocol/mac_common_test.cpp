#include "protocol/mac_common.hpp"

#include <gtest/gtest.h>

namespace dftmsn {
namespace {

TEST(MacTiming, DerivedFromRadioConfig) {
  RadioConfig radio;  // 50-bit control, 1000-bit data @ 10 kbps
  MacTiming t(radio);
  EXPECT_DOUBLE_EQ(t.slot_s, 0.005);
  EXPECT_DOUBLE_EQ(t.data_s, 0.1);
  EXPECT_DOUBLE_EQ(t.guard_s, 0.0025);
}

TEST(MacTiming, CtsWindowCoversAllSlotsPlusGuard) {
  MacTiming t{RadioConfig{}};
  EXPECT_DOUBLE_EQ(t.cts_window(4), 4 * 0.005 + 0.0025);
  EXPECT_DOUBLE_EQ(t.cts_window(16), 16 * 0.005 + 0.0025);
}

TEST(MacTiming, AckWindowScalesWithReceivers) {
  MacTiming t{RadioConfig{}};
  EXPECT_DOUBLE_EQ(t.ack_window(1), 0.005 + 0.0025);
  EXPECT_DOUBLE_EQ(t.ack_window(3), 3 * 0.005 + 0.0025);
}

TEST(ProtocolKindNames, AllDistinct) {
  EXPECT_STREQ(protocol_kind_name(ProtocolKind::kOpt), "OPT");
  EXPECT_STREQ(protocol_kind_name(ProtocolKind::kNoOpt), "NOOPT");
  EXPECT_STREQ(protocol_kind_name(ProtocolKind::kNoSleep), "NOSLEEP");
  EXPECT_STREQ(protocol_kind_name(ProtocolKind::kZbr), "ZBR");
  EXPECT_STREQ(protocol_kind_name(ProtocolKind::kDirect), "DIRECT");
  EXPECT_STREQ(protocol_kind_name(ProtocolKind::kEpidemic), "EPIDEMIC");
}

}  // namespace
}  // namespace dftmsn
