// Tests of the MAC's Sec. 4 adaptive behaviours: the τ_max / W updates
// from the neighbour table, the ξ decay timer, and sleeping-period use.
#include <gtest/gtest.h>

#include <memory>

#include "mobility/mobility_manager.hpp"
#include "node/sink_node.hpp"
#include "phy/channel.hpp"
#include "protocol/crosslayer_mac.hpp"
#include "protocol/protocol_factory.hpp"

namespace dftmsn {
namespace {

/// Cluster fixture: `n` sensors in mutual range plus one sink.
class AdaptiveWorld {
 public:
  explicit AdaptiveWorld(int n, ProtocolKind kind = ProtocolKind::kOpt)
      : cfg_(),
        energy_(cfg_.power),
        rngs_(5),
        mobility_(sim_, cfg_.scenario.mobility_step_s),
        metrics_(0.0) {
    for (NodeId i = 0; i < static_cast<NodeId>(n); ++i) {
      mobility_.add_node(
          i, std::make_unique<StaticMobility>(Vec2{2.0 * i, 0.0}));
    }
    mobility_.add_node(static_cast<NodeId>(n),
                       std::make_unique<StaticMobility>(Vec2{0.0, 5.0}));
    channel_ = std::make_unique<Channel>(sim_, mobility_, cfg_.radio.range_m,
                                         cfg_.radio.bandwidth_bps);
    for (NodeId i = 0; i < static_cast<NodeId>(n); ++i) {
      radios_.push_back(
          std::make_unique<Radio>(sim_, energy_, cfg_.radio.switch_time_s));
      queues_.push_back(
          std::make_unique<FtdQueue>(cfg_.protocol.queue_capacity));
      macs_.push_back(std::make_unique<CrossLayerMac>(
          i, sim_, *channel_, *radios_[i], *queues_[i],
          make_strategy(kind, cfg_), cfg_, make_mac_options(kind, cfg_),
          static_cast<NodeId>(n), metrics_, rngs_.stream("mac", i)));
      channel_->attach(i, *radios_[i], *macs_[i]);
    }
    sink_ = std::make_unique<SinkNode>(static_cast<NodeId>(n), sim_,
                                       *channel_, energy_, cfg_, metrics_,
                                       rngs_.stream("sink"));
    channel_->attach(static_cast<NodeId>(n), sink_->radio(), *sink_);
    mobility_.start();
    for (auto& m : macs_) m->start();
  }

  void inject_traffic(MessageId base) {
    for (NodeId i = 0; i < macs_.size(); ++i) {
      Message m;
      m.id = base + i;
      m.source = i;
      m.created = sim_.now();
      metrics_.on_generated(m);
      macs_[i]->enqueue(m);
    }
  }

  Config cfg_;
  Simulator sim_;
  EnergyModel energy_;
  RandomSource rngs_;
  MobilityManager mobility_;
  Metrics metrics_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::vector<std::unique_ptr<FtdQueue>> queues_;
  std::vector<std::unique_ptr<CrossLayerMac>> macs_;
  std::unique_ptr<SinkNode> sink_;
};

TEST(MacAdaptive, TauMaxGrowsWithObservedContention) {
  AdaptiveWorld w(4);
  const int initial = w.macs_[0]->tau_max();
  for (int round = 0; round < 20; ++round) {
    w.inject_traffic(1000 + round * 10);
    w.sim_.run_until(w.sim_.now() + 20.0);
  }
  // Node 0 has overheard its three contenders' RTS/CTS and must have
  // widened its listen window beyond the unoptimized default.
  EXPECT_GT(w.macs_[0]->tau_max(), initial);
  EXPECT_GE(w.macs_[0]->neighbors().live_count(w.sim_.now()), 1u);
}

TEST(MacAdaptive, FixedVariantNeverAdapts) {
  AdaptiveWorld w(4, ProtocolKind::kNoOpt);
  const int tau = w.macs_[0]->tau_max();
  const int cw = w.macs_[0]->cts_window();
  for (int round = 0; round < 10; ++round) {
    w.inject_traffic(2000 + round * 10);
    w.sim_.run_until(w.sim_.now() + 20.0);
  }
  EXPECT_EQ(w.macs_[0]->tau_max(), tau);
  EXPECT_EQ(w.macs_[0]->cts_window(), cw);
}

TEST(MacAdaptive, XiDecaysWithoutTraffic) {
  AdaptiveWorld w(1);
  // Bootstrap ξ with one direct delivery.
  w.inject_traffic(1);
  w.sim_.run_until(60.0);
  const double boosted = w.macs_[0]->strategy().local_metric();
  ASSERT_GT(boosted, 0.0);
  // Now starve the node: Δ-cadence decay must shrink ξ monotonically.
  w.sim_.run_until(60.0 + 3.0 * w.cfg_.protocol.xi_timeout_s);
  EXPECT_LT(w.macs_[0]->strategy().local_metric(), boosted);
}

TEST(MacAdaptive, SleepPeriodsLengthenWhenNothingHappens) {
  AdaptiveWorld w(1);
  w.sim_.run_until(300.0);
  const auto& ctl = w.macs_[0]->sleep_controller();
  // No successes in the ρ window -> T_i at its maximum.
  EXPECT_DOUBLE_EQ(ctl.rho(), 1.0 / w.cfg_.sleep.history_cycles);
  EXPECT_DOUBLE_EQ(ctl.sleep_period(0, w.cfg_.protocol.queue_capacity),
                   ctl.t_max());
  EXPECT_GE(w.macs_[0]->stats().sleeps, 2u);
}

TEST(MacAdaptive, ContendersEventuallyAllDeliver) {
  AdaptiveWorld w(3);
  w.inject_traffic(1);
  w.sim_.run_until(600.0);
  // All three contenders share the sink; adaptation must let each win.
  EXPECT_EQ(w.metrics_.delivered_unique(), 3u);
}

}  // namespace
}  // namespace dftmsn
