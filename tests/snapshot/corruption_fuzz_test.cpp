// Corruption fuzz matrix: every durable file kind the sweep machinery
// reads back (checkpoint container + the checkpoint payloads inside it,
// manifest, sealed worker request/result, motion trace) is subjected to
// deterministic single-byte flips and truncations at positions swept
// across the whole file. The contract under test: a reader either
// succeeds (the damage hit dead bytes or free text) or throws an
// exception naming the damaged file — never crashes, never returns
// garbage silently. The CI runs this suite under ASan+UBSan, which turns
// "never crashes" into "no out-of-bounds read on any torn length field".
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "experiment/dispatch.hpp"
#include "experiment/supervisor.hpp"
#include "experiment/worker_protocol.hpp"
#include "mobility/motion_trace.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/ckpt_container.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& name) : path(name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

std::vector<std::uint8_t> slurp(const std::string& path) {
  return snapshot::read_file(path);
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

/// Runs `probe` against every mutation of `original` written to
/// `scratch`: one-byte flips on a stride sweeping the whole file (plus
/// the first and last 24 bytes, where magics, counts and digests live)
/// and truncations at representative lengths. The probe must finish or
/// throw an exception whose message names the scratch path.
void fuzz_file(const std::vector<std::uint8_t>& original,
               const std::string& scratch,
               const std::function<void(const std::string&)>& probe) {
  ASSERT_FALSE(original.empty());

  std::vector<std::size_t> flips;
  const std::size_t stride = std::max<std::size_t>(1, original.size() / 41);
  for (std::size_t i = 0; i < original.size(); i += stride)
    flips.push_back(i);
  for (std::size_t i = 0; i < 24 && i < original.size(); ++i) {
    flips.push_back(i);
    flips.push_back(original.size() - 1 - i);
  }

  int damaged_detected = 0;
  for (const std::size_t at : flips) {
    std::vector<std::uint8_t> bytes = original;
    bytes[at] ^= 0xa5;
    spit(scratch, bytes);
    try {
      probe(scratch);  // flip hit slack (dead record, free text): fine
    } catch (const std::exception& e) {
      ++damaged_detected;
      EXPECT_NE(std::string(e.what()).find(scratch), std::string::npos)
          << "flip at byte " << at
          << " produced an error that does not name the file: " << e.what();
    }
  }
  // Sanity on the harness itself: a matrix where no flip was ever
  // detected means the probe isn't actually validating anything.
  EXPECT_GT(damaged_detected, 0) << "no corruption detected for " << scratch;

  const std::size_t cuts[] = {0,
                              1,
                              7,
                              original.size() / 4,
                              original.size() / 2,
                              original.size() - 17 % original.size(),
                              original.size() - 1};
  for (const std::size_t len : cuts) {
    if (len >= original.size()) continue;
    std::vector<std::uint8_t> bytes(original.begin(),
                                    original.begin() + len);
    spit(scratch, bytes);
    try {
      probe(scratch);  // e.g. a torn container tail is recoverable
    } catch (const std::exception& e) {
      EXPECT_NE(std::string(e.what()).find(scratch), std::string::npos)
          << "truncation to " << len
          << " produced an error that does not name the file: " << e.what();
    }
  }
  std::remove(scratch.c_str());
}

Config small_config(std::uint64_t seed) {
  Config c;
  c.scenario.num_sensors = 6;
  c.scenario.num_sinks = 1;
  c.scenario.field_m = 100.0;
  c.scenario.duration_s = 600.0;
  c.scenario.speed_max_mps = 4.0;
  c.scenario.seed = seed;
  return c;
}

/// One interrupted supervised mini-sweep produces the natural artifacts:
/// a container holding real checkpoint payloads and a manifest with
/// in-flight state. (A completed sweep erases its entries.)
struct SweepArtifacts {
  explicit SweepArtifacts(const std::string& dir) {
    std::vector<RunSpec> specs(2);
    specs[0].config = small_config(11);
    specs[1].config = small_config(12);
    SupervisorOptions opts;
    opts.checkpoint_dir = dir;
    opts.checkpoint_every_s = 100.0;
    opts.retry_backoff_s = 0.0;
    opts.stop_after_checkpoints = 1;  // interrupt: keeps entries live
    manifest = run_specs_supervised(specs, opts);
  }
  SweepManifest manifest;
};

TEST(CorruptionFuzz, CheckpointContainerAndPayloads) {
  TempDir dir("fuzz_container.tmp");
  SweepArtifacts made(dir.path);
  const std::string cpath = checkpoint_container_path(dir.path);
  const auto original = slurp(cpath);
  ASSERT_FALSE(snapshot::container_scan(cpath).entries.empty());

  fuzz_file(original, dir.path + "/fuzzed.dcc", [](const std::string& p) {
    // Scan, then decode every surviving payload the way resume would:
    // container_get re-validates the record digest, read_checkpoint_meta
    // validates the checkpoint's own seal. A payload-level error is
    // re-thrown naming the file, mirroring the production call sites.
    const auto scan = snapshot::container_scan(p);
    for (const auto& e : scan.entries) {
      const auto payload = snapshot::container_get(p, e.spec);
      if (!payload) continue;
      try {
        read_checkpoint_meta(*payload);
      } catch (const std::exception& ex) {
        throw snapshot::SnapshotError("checkpoint in " + p + ": " +
                                      ex.what());
      }
    }
  });
}

TEST(CorruptionFuzz, Manifest) {
  TempDir dir("fuzz_manifest.tmp");
  SweepArtifacts made(dir.path);
  const auto original = slurp(manifest_path(dir.path));

  fuzz_file(original, dir.path + "/fuzzed_manifest.txt",
            [](const std::string& p) {
              SweepManifest m;
              load_manifest(p, &m);
            });
}

TEST(CorruptionFuzz, WorkerRequestAndResult) {
  TempDir dir("fuzz_worker.tmp");

  WorkerRequest req;
  req.config = small_config(21);
  req.attempt = 1;
  req.checkpoint_path = dir.path + "/checkpoints.dcc";
  req.checkpoint_spec = 3;
  req.checkpoint_every_s = 100.0;
  req.result_path = dir.path + "/w.result";
  req.progress_path = dir.path + "/w.progress";
  write_worker_request(dir.path + "/w.req", req);
  fuzz_file(slurp(dir.path + "/w.req"), dir.path + "/fuzzed.req",
            [](const std::string& p) { read_worker_request(p); });

  WorkerResult res;
  res.ok = true;
  res.result.delivery_ratio = 0.5;
  res.result.generated = 100;
  res.result.delivered = 50;
  res.checkpoints_written = 2;
  write_worker_result(dir.path + "/w.result", res);
  fuzz_file(slurp(dir.path + "/w.result"), dir.path + "/fuzzed.result",
            [](const std::string& p) { read_worker_result(p); });
}

TEST(CorruptionFuzz, DispatchFrames) {
  TempDir dir("fuzz_frames.tmp");

  // A realistic dispatch stream: every frame type in conversation order,
  // the grant and result carrying real sealed container images (so flips
  // inside a digest-clean frame's payload still hit validated bytes).
  WorkerRequest req;
  req.config = small_config(31);
  req.attempt = 1;
  GrantItem item;
  item.spec = 2;
  item.attempt = 1;
  item.request = encode_worker_request(req);
  WorkerResult res;
  res.ok = true;
  res.result.delivery_ratio = 0.25;
  res.result.generated = 8;
  res.result.delivered = 2;

  std::vector<std::uint8_t> stream;
  for (const auto& frame :
       {encode_hello_frame("fuzz-worker"), encode_request_frame(),
        encode_grant_frame(7, 1.5, {item}),
        encode_heartbeat_frame(7, 2, 99, 0),
        encode_result_frame(7, 2, 1, encode_worker_result(res)),
        encode_nowork_frame(true)})
    stream.insert(stream.end(), frame.begin(), frame.end());

  // The probe replays the dispatcher's receive loop: extract greedily,
  // stop on an incomplete tail (a live stream would wait for more
  // bytes). Damage must throw naming the context — the event loops drop
  // the connection on that, never crash, never accept a torn frame.
  fuzz_file(stream, dir.path + "/fuzzed.frames", [](const std::string& p) {
    const auto bytes = slurp(p);
    std::size_t off = 0;
    while (off < bytes.size()) {
      WireFrame f;
      const std::size_t used =
          try_extract_frame(bytes.data() + off, bytes.size() - off, p, &f);
      if (used == 0) break;
      off += used;
    }
  });
}

TEST(CorruptionFuzz, MotionTrace) {
  TempDir dir("fuzz_trace.tmp");
  MotionTrace trace;
  trace.tracks.resize(3);
  for (std::size_t n = 0; n < trace.tracks.size(); ++n)
    for (int i = 0; i < 20; ++i)
      trace.tracks[n].push_back(
          {i * 0.5, {static_cast<double>(n + i), static_cast<double>(i)}});
  save_motion_trace(dir.path + "/t.trc", trace);

  fuzz_file(slurp(dir.path + "/t.trc"), dir.path + "/fuzzed.trc",
            [](const std::string& p) { load_motion_trace(p); });
}

}  // namespace
}  // namespace dftmsn
