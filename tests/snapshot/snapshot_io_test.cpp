// Unit tests of the canonical snapshot encoding (Writer/Reader, section
// structure, digests, atomic file IO).
#include "snapshot/snapshot_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <limits>

namespace dftmsn::snapshot {
namespace {

TEST(SnapshotIo, PrimitivesRoundTrip) {
  Writer w;
  w.begin_section("prims");
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.f64(3.141592653589793);
  w.boolean(true);
  w.boolean(false);
  w.size(5);  // counts must stay plausible (<= buffer size) on read
  w.str("hello");
  w.end_section();

  Reader r(w.bytes());
  r.begin_section("prims");
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.141592653589793);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.size(), 5u);
  EXPECT_EQ(r.str(), "hello");
  r.end_section();
  EXPECT_TRUE(r.at_end());
}

TEST(SnapshotIo, DoublesKeepExactBitPatterns) {
  const double values[] = {0.0, -0.0, 1e-300, -1e300,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::infinity()};
  Writer w;
  w.begin_section("d");
  for (double v : values) w.f64(v);
  w.end_section();
  Reader r(w.bytes());
  r.begin_section("d");
  for (double v : values) {
    const double got = r.f64();
    EXPECT_EQ(std::memcmp(&got, &v, sizeof(v)), 0);
  }
  r.end_section();
}

TEST(SnapshotIo, IdenticalStateSerializesIdentically) {
  const auto build = [] {
    Writer w;
    w.begin_section("a");
    w.u64(7);
    w.f64(2.5);
    w.end_section();
    w.begin_section("b");
    w.str("x");
    w.end_section();
    return w.bytes();
  };
  EXPECT_EQ(build(), build());
}

TEST(SnapshotIo, SectionsNest) {
  Writer w;
  w.begin_section("outer");
  w.u32(1);
  w.begin_section("inner");
  w.u32(2);
  w.end_section();
  w.u32(3);
  w.end_section();

  Reader r(w.bytes());
  r.begin_section("outer");
  EXPECT_EQ(r.u32(), 1u);
  r.begin_section("inner");
  EXPECT_EQ(r.u32(), 2u);
  r.end_section();
  EXPECT_EQ(r.u32(), 3u);
  r.end_section();
}

TEST(SnapshotIo, WrongSectionNameThrows) {
  Writer w;
  w.begin_section("alpha");
  w.end_section();
  Reader r(w.bytes());
  EXPECT_THROW(r.begin_section("beta"), SnapshotError);
}

TEST(SnapshotIo, UnderconsumedSectionThrows) {
  Writer w;
  w.begin_section("s");
  w.u32(1);
  w.u32(2);
  w.end_section();
  Reader r(w.bytes());
  r.begin_section("s");
  (void)r.u32();
  EXPECT_THROW(r.end_section(), SnapshotError);
}

TEST(SnapshotIo, TruncatedBufferThrows) {
  Writer w;
  w.begin_section("s");
  w.u64(1);
  w.end_section();
  std::vector<std::uint8_t> cut = w.bytes();
  cut.resize(cut.size() - 3);
  Reader r(std::move(cut));
  // The section's recorded length now overruns the buffer, so the
  // truncation is caught at the section boundary, before any payload
  // field is even read.
  EXPECT_THROW(r.begin_section("s"), SnapshotError);
}

TEST(SnapshotIo, TopLevelSectionsListsNamesInOrder) {
  Writer w;
  for (const char* name : {"sim", "mobility", "channel"}) {
    w.begin_section(name);
    w.u8(1);
    w.end_section();
  }
  const std::vector<std::string> names = top_level_sections(w.bytes());
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "sim");
  EXPECT_EQ(names[1], "mobility");
  EXPECT_EQ(names[2], "channel");
}

TEST(SnapshotIo, RequireIdenticalNamesTheDivergingSection) {
  const auto build = [](std::uint64_t channel_value) {
    Writer w;
    w.begin_section("sim");
    w.u64(1);
    w.end_section();
    w.begin_section("channel");
    w.u64(channel_value);
    w.end_section();
    return w.bytes();
  };
  EXPECT_NO_THROW(require_identical(build(5), build(5)));
  try {
    require_identical(build(5), build(6));
    FAIL() << "expected SnapshotMismatch";
  } catch (const SnapshotMismatch& m) {
    EXPECT_EQ(m.section, "channel");
  }
}

TEST(SnapshotIo, DigestChangesWithContent) {
  Writer a;
  a.begin_section("s");
  a.u64(1);
  a.end_section();
  Writer b;
  b.begin_section("s");
  b.u64(2);
  b.end_section();
  EXPECT_NE(a.digest(), b.digest());
}

TEST(SnapshotIo, FileRoundTrip) {
  const std::string path = "snapshot_io_test_tmp.bin";
  Writer w;
  w.begin_section("s");
  w.str("payload");
  w.end_section();
  write_file_atomic(path, w.bytes());
  EXPECT_EQ(read_file(path), w.bytes());
  // Atomic rewrite replaces, never appends.
  write_file_atomic(path, w.bytes());
  EXPECT_EQ(read_file(path), w.bytes());
  std::remove(path.c_str());
  EXPECT_THROW(read_file(path), SnapshotError);
}

}  // namespace
}  // namespace dftmsn::snapshot
