// Checkpoint round-trip property suite: for every protocol variant ×
// mobility model, snapshot a run mid-flight, resume from the bytes, and
// require the resumed run's Summary to be bit-identical to the
// uninterrupted one. This is the tentpole determinism guarantee: a resume
// is a pure fast-forward, never a perturbation.
#include "snapshot/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "../testutil/trace_fixtures.hpp"
#include "experiment/runner.hpp"
#include "experiment/world.hpp"

namespace dftmsn {
namespace {

Config small_config(MobilityKind mobility) {
  Config c;
  c.scenario.num_sensors = 10;
  c.scenario.num_sinks = 2;
  c.scenario.field_m = 120.0;
  c.scenario.duration_s = 600.0;
  c.scenario.warmup_s = 50.0;
  c.scenario.speed_min_mps = 0.5;  // waypoint needs v_min > 0
  c.scenario.speed_max_mps = 4.0;
  c.scenario.mobility = mobility;
  c.scenario.seed = 20260806;
  if (mobility == MobilityKind::kTrace) {
    c.scenario.trace_path = testutil::write_test_trace(
        "checkpoint_roundtrip_test.tmp.trc", c.scenario.num_sensors,
        c.scenario.field_m, c.scenario.duration_s, c.scenario.seed);
  }
  return c;
}

std::uint64_t bits(double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

void expect_identical_results(const RunResult& a, const RunResult& b,
                              const std::string& label) {
  EXPECT_EQ(bits(a.delivery_ratio), bits(b.delivery_ratio)) << label;
  EXPECT_EQ(bits(a.mean_power_mw), bits(b.mean_power_mw)) << label;
  EXPECT_EQ(bits(a.mean_delay_s), bits(b.mean_delay_s)) << label;
  EXPECT_EQ(bits(a.mean_hops), bits(b.mean_hops)) << label;
  EXPECT_EQ(bits(a.overhead_bits_per_delivery),
            bits(b.overhead_bits_per_delivery))
      << label;
  EXPECT_EQ(a.generated, b.generated) << label;
  EXPECT_EQ(a.delivered, b.delivered) << label;
  EXPECT_EQ(a.collisions, b.collisions) << label;
  EXPECT_EQ(a.attempts, b.attempts) << label;
  EXPECT_EQ(a.failed_attempts, b.failed_attempts) << label;
  EXPECT_EQ(a.data_transmissions, b.data_transmissions) << label;
  EXPECT_EQ(a.drops_overflow, b.drops_overflow) << label;
  EXPECT_EQ(a.drops_threshold, b.drops_threshold) << label;
  EXPECT_EQ(a.events_executed, b.events_executed) << label;
  EXPECT_EQ(a.faults_injected, b.faults_injected) << label;
  EXPECT_EQ(a.drops_node_failure, b.drops_node_failure) << label;
  EXPECT_EQ(a.frames_fault_corrupted, b.frames_fault_corrupted) << label;
}

constexpr ProtocolKind kAllProtocols[] = {
    ProtocolKind::kOpt,    ProtocolKind::kNoOpt,    ProtocolKind::kNoSleep,
    ProtocolKind::kZbr,    ProtocolKind::kDirect,   ProtocolKind::kEpidemic,
    ProtocolKind::kSwim,
};
constexpr MobilityKind kAllMobility[] = {
    MobilityKind::kZone, MobilityKind::kWaypoint, MobilityKind::kPatrol,
    MobilityKind::kTrace};

TEST(CheckpointRoundTrip, EveryProtocolTimesEveryMobilityModel) {
  for (ProtocolKind kind : kAllProtocols) {
    for (MobilityKind mobility : kAllMobility) {
      const std::string label = std::string(protocol_kind_name(kind)) + "/" +
                                mobility_kind_name(mobility);
      const Config cfg = small_config(mobility);

      // Uninterrupted reference run, checkpointed mid-flight.
      World reference(cfg, kind);
      reference.run_until(cfg.scenario.duration_s / 2);
      const std::vector<std::uint8_t> image = make_checkpoint(reference);
      reference.run();
      const RunResult expected = reduce_world(reference);

      // Resumed run: rebuild + verified replay + finish.
      std::unique_ptr<World> resumed = resume_world(cfg, kind, image);
      resumed->run();
      expect_identical_results(expected, reduce_world(*resumed), label);
    }
  }
}

TEST(CheckpointRoundTrip, ResumeIsVerifiedAgainstRecordedBytes) {
  // resume_world's verify pass re-serializes the replayed world and
  // byte-compares it with the checkpoint; a checkpoint taken at a
  // different point must be rejected as a mismatch, not silently used.
  const Config cfg = small_config(MobilityKind::kZone);
  World world(cfg, ProtocolKind::kOpt);
  world.run_until(200.0);
  std::vector<std::uint8_t> image = make_checkpoint(world);

  // Forge the meta: claim the snapshot was taken 50 events earlier. The
  // replay then reproduces a *different* state than the recorded bytes.
  std::vector<std::uint8_t> state;
  const CheckpointMeta meta = read_checkpoint_meta(image, &state);
  ASSERT_GT(meta.events, 50u);
  World truncated(cfg, ProtocolKind::kOpt);
  truncated.replay_to(meta.events - 50, meta.time);
  EXPECT_THROW(snapshot::require_identical(state, truncated.serialize_state()),
               snapshot::SnapshotMismatch);
}

TEST(CheckpointRoundTrip, CheckpointAtTimeZeroResumes) {
  const Config cfg = small_config(MobilityKind::kZone);
  World world(cfg, ProtocolKind::kDirect);
  world.run_until(0.0);  // started, nothing executed yet
  const std::vector<std::uint8_t> image = make_checkpoint(world);
  world.run();
  std::unique_ptr<World> resumed =
      resume_world(cfg, ProtocolKind::kDirect, image);
  resumed->run();
  expect_identical_results(reduce_world(world), reduce_world(*resumed),
                           "t=0");
}

TEST(CheckpointRoundTrip, FaultPlansSurviveResume) {
  // Checkpoint across a crash/outage-laden run: injector state (burst
  // windows, rng) must replay exactly.
  Config cfg = small_config(MobilityKind::kZone);
  cfg.faults.plan = "crash@150:frac=0.2,for=200;loss@100:prob=0.3,for=80";
  World world(cfg, ProtocolKind::kOpt);
  world.run_until(300.0);
  const std::vector<std::uint8_t> image = make_checkpoint(world);
  world.run();
  std::unique_ptr<World> resumed = resume_world(cfg, ProtocolKind::kOpt, image);
  resumed->run();
  expect_identical_results(reduce_world(world), reduce_world(*resumed),
                           "faults");
}

}  // namespace
}  // namespace dftmsn
