// The indexed checkpoint container ("DFTMSNCC" v1): put/get/erase
// semantics, index-authoritative liveness, torn-tail recovery, repair,
// compaction, and rejection of foreign files — plus the crash-tolerance
// contract, exercised by injecting crashes at every container write
// boundary and requiring the previous generation to survive.
#include "snapshot/ckpt_container.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "snapshot/io_env.hpp"
#include "snapshot/snapshot_io.hpp"

namespace dftmsn::snapshot {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  explicit TempDir(const std::string& name) : path(name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

struct EnvGuard {
  EnvGuard() { IoEnv::instance().reset(); }
  ~EnvGuard() { IoEnv::instance().reset(); }
};

std::vector<std::uint8_t> payload(std::uint64_t spec, std::size_t len) {
  std::vector<std::uint8_t> p(len);
  for (std::size_t i = 0; i < len; ++i)
    p[i] = static_cast<std::uint8_t>((spec * 131 + i * 7) & 0xff);
  return p;
}

void append_garbage(const std::string& path, std::size_t n) {
  std::ofstream f(path, std::ios::binary | std::ios::app);
  for (std::size_t i = 0; i < n; ++i) f.put(static_cast<char>(0x5a));
}

TEST(CkptContainer, MissingFileScansEmptyAndGetsNullopt) {
  TempDir dir("cc_missing.tmp");
  const std::string path = dir.path + "/c.dcc";
  const ContainerScanResult s = container_scan(path);
  EXPECT_FALSE(s.exists);
  EXPECT_TRUE(s.entries.empty());
  EXPECT_FALSE(container_get(path, 0).has_value());
  EXPECT_NO_THROW(container_erase(path, 0));
  EXPECT_FALSE(container_repair(path));
}

TEST(CkptContainer, PutGetRoundTripAcrossSpecs) {
  TempDir dir("cc_roundtrip.tmp");
  const std::string path = dir.path + "/c.dcc";
  for (std::uint64_t spec : {3u, 0u, 7u})
    container_put(path, spec, payload(spec, 100 + spec));

  const ContainerScanResult s = container_scan(path);
  EXPECT_TRUE(s.exists);
  EXPECT_TRUE(s.clean);
  ASSERT_EQ(s.entries.size(), 3u);
  // Entries come back sorted by spec regardless of insertion order.
  EXPECT_EQ(s.entries[0].spec, 0u);
  EXPECT_EQ(s.entries[1].spec, 3u);
  EXPECT_EQ(s.entries[2].spec, 7u);

  for (std::uint64_t spec : {0u, 3u, 7u}) {
    const auto got = container_get(path, spec);
    ASSERT_TRUE(got.has_value()) << "spec " << spec;
    EXPECT_EQ(*got, payload(spec, 100 + spec));
  }
  EXPECT_FALSE(container_get(path, 99).has_value());
}

TEST(CkptContainer, PutSupersedesAndLeavesDeadBytes) {
  TempDir dir("cc_supersede.tmp");
  const std::string path = dir.path + "/c.dcc";
  container_put(path, 5, payload(1, 64));
  container_put(path, 5, payload(2, 64));
  container_put(path, 5, payload(3, 64));

  EXPECT_EQ(*container_get(path, 5), payload(3, 64));
  const ContainerScanResult s = container_scan(path);
  ASSERT_EQ(s.entries.size(), 1u);
  // Two superseded generations stay behind as dead records.
  EXPECT_GT(s.dead_bytes, 2 * 64u);
}

TEST(CkptContainer, EraseIsIndexAuthoritative) {
  TempDir dir("cc_erase.tmp");
  const std::string path = dir.path + "/c.dcc";
  container_put(path, 1, payload(1, 50));
  container_put(path, 2, payload(2, 50));
  container_erase(path, 1);

  // The erased record's bytes are still in the file, but the index — the
  // authority on liveness — no longer lists it, and the container is
  // still clean. (A record-scan that "resurrected" erased entries would
  // break resume: a completed spec would be re-adopted.)
  const ContainerScanResult s = container_scan(path);
  EXPECT_TRUE(s.clean);
  ASSERT_EQ(s.entries.size(), 1u);
  EXPECT_EQ(s.entries[0].spec, 2u);
  EXPECT_GT(s.dead_bytes, 0u);
  EXPECT_FALSE(container_get(path, 1).has_value());
  EXPECT_TRUE(container_get(path, 2).has_value());
}

TEST(CkptContainer, TornTailRecoversEveryIntactEntry) {
  TempDir dir("cc_torn.tmp");
  const std::string path = dir.path + "/c.dcc";
  container_put(path, 1, payload(1, 80));
  container_put(path, 2, payload(2, 80));
  append_garbage(path, 37);  // torn append: bytes past the footer

  ContainerScanResult s = container_scan(path);
  EXPECT_FALSE(s.clean);
  ASSERT_EQ(s.entries.size(), 2u);  // recovery scan still finds both
  EXPECT_EQ(*container_get(path, 1), payload(1, 80));

  EXPECT_TRUE(container_repair(path));
  s = container_scan(path);
  EXPECT_TRUE(s.clean);
  EXPECT_EQ(s.entries.size(), 2u);
  EXPECT_FALSE(container_repair(path));  // already clean: no-op
}

TEST(CkptContainer, TruncatedTailFallsBackToLastGoodGeneration) {
  TempDir dir("cc_trunc.tmp");
  const std::string path = dir.path + "/c.dcc";
  container_put(path, 1, payload(1, 80));
  const auto size_after_first = fs::file_size(path);
  container_put(path, 1, payload(2, 80));

  // Tear the file mid-way through the second generation's record: the
  // recovery scan must fall back to generation 1, not fail.
  fs::resize_file(path, size_after_first + 10);
  const ContainerScanResult s = container_scan(path);
  EXPECT_FALSE(s.clean);
  ASSERT_EQ(s.entries.size(), 1u);
  EXPECT_EQ(*container_get(path, 1), payload(1, 80));

  // And a fresh put on the torn file heals it in passing.
  container_put(path, 1, payload(3, 80));
  EXPECT_TRUE(container_scan(path).clean);
  EXPECT_EQ(*container_get(path, 1), payload(3, 80));
}

TEST(CkptContainer, ShortHeaderIsRecoverableNotFatal) {
  TempDir dir("cc_shorthdr.tmp");
  const std::string path = dir.path + "/c.dcc";
  // A crash during the very first header write leaves < 12 bytes; that
  // must scan as recoverable-empty (and put must heal it), because no
  // data can have been lost.
  std::ofstream(path, std::ios::binary) << "DFTM";
  const ContainerScanResult s = container_scan(path);
  EXPECT_TRUE(s.exists);
  EXPECT_FALSE(s.clean);
  EXPECT_TRUE(s.entries.empty());

  container_put(path, 0, payload(0, 40));
  EXPECT_TRUE(container_scan(path).clean);
}

TEST(CkptContainer, ForeignFileIsRejectedNamingThePath) {
  TempDir dir("cc_foreign.tmp");
  const std::string path = dir.path + "/c.dcc";
  std::ofstream(path, std::ios::binary) << "this is not a container file";
  try {
    container_scan(path);
    FAIL() << "foreign file accepted";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
}

TEST(CkptContainer, CompactionDropsDeadBytesAndKeepsEveryEntry) {
  TempDir dir("cc_compact.tmp");
  const std::string path = dir.path + "/c.dcc";
  for (int gen = 0; gen < 6; ++gen)
    for (std::uint64_t spec : {1u, 2u, 3u})
      container_put(path, spec, payload(spec * 10 + gen, 200));
  container_erase(path, 3);

  const auto before = fs::file_size(path);
  container_compact(path);
  const ContainerScanResult s = container_scan(path);
  EXPECT_TRUE(s.clean);
  EXPECT_EQ(s.dead_bytes, 0u);
  EXPECT_LT(fs::file_size(path), before);
  ASSERT_EQ(s.entries.size(), 2u);
  EXPECT_EQ(*container_get(path, 1), payload(15, 200));
  EXPECT_EQ(*container_get(path, 2), payload(25, 200));
  EXPECT_FALSE(container_get(path, 3).has_value());
}

TEST(CkptContainer, CrashAtEveryWriteBoundaryNeverLosesThePreviousPut) {
  EnvGuard guard;
  TempDir dir("cc_crashmatrix.tmp");
  IoEnv& io = IoEnv::instance();

  // For every op x occurrence boundary inside a container_put: seed the
  // container with generation 1, inject one crash, attempt generation 2.
  // Whatever state the crash left, a recovery scan must still produce an
  // intact checkpoint for the spec — generation 2 if the put got far
  // enough, generation 1 otherwise. Iterate occurrences until the fault
  // no longer fires (the put ran clean), so no boundary is skipped.
  for (const char* op : {"open", "write", "fsync", "rename", "fsyncdir"}) {
    for (std::uint64_t nth = 1; nth <= 32; ++nth) {
      const std::string path = dir.path + "/c_" + op + "_" +
                               std::to_string(nth) + ".dcc";
      io.reset();
      container_put(path, 7, payload(1, 120));

      io.set_schedule_spec(std::string("crash@") + op + "#" +
                           std::to_string(nth));
      bool crashed = false;
      try {
        container_put(path, 7, payload(2, 120));
      } catch (const InjectedCrash&) {
        crashed = true;
      }
      io.reset();

      const auto got = container_get(path, 7);
      ASSERT_TRUE(got.has_value())
          << "crash@" << op << "#" << nth << " lost every generation";
      EXPECT_TRUE(*got == payload(1, 120) || *got == payload(2, 120))
          << "crash@" << op << "#" << nth << " surfaced garbage";
      if (!crashed) {
        // Fault never fired: the put has fewer than nth of this op.
        // Everything before this boundary was covered; move on.
        EXPECT_EQ(*got, payload(2, 120));
        break;
      }
      // Repair must always bring a crashed file back to clean.
      container_repair(path);
      EXPECT_TRUE(container_scan(path).clean)
          << "crash@" << op << "#" << nth;
    }
  }
}

}  // namespace
}  // namespace dftmsn::snapshot
