// Checkpoint container validation (magic/version/digest/identity checks)
// plus the tentpole acceptance test: an interrupted-then-resumed sweep
// produces bit-identical results to an uninterrupted one, at --jobs 1 and
// --jobs 4 alike.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "experiment/runner.hpp"
#include "experiment/supervisor.hpp"
#include "experiment/world.hpp"
#include "snapshot/checkpoint.hpp"

namespace dftmsn {
namespace {

Config small_config() {
  Config c;
  c.scenario.num_sensors = 10;
  c.scenario.num_sinks = 2;
  c.scenario.field_m = 120.0;
  c.scenario.duration_s = 600.0;
  c.scenario.warmup_s = 50.0;
  c.scenario.speed_max_mps = 4.0;
  c.scenario.seed = 4242;
  return c;
}

std::vector<std::uint8_t> checkpoint_at(const Config& cfg, ProtocolKind kind,
                                        SimTime at) {
  World world(cfg, kind);
  world.run_until(at);
  return make_checkpoint(world);
}

TEST(CheckpointFormat, MetaRoundTrips) {
  const Config cfg = small_config();
  World world(cfg, ProtocolKind::kOpt);
  world.run_until(250.0);
  const std::vector<std::uint8_t> image = make_checkpoint(world);
  const CheckpointMeta meta = read_checkpoint_meta(image);
  EXPECT_EQ(meta.version, 3u);  // v3: trace mobility + trace_path key
  EXPECT_EQ(meta.config_digest, config_digest(cfg, ProtocolKind::kOpt));
  EXPECT_EQ(meta.protocol,
            static_cast<std::uint32_t>(ProtocolKind::kOpt));
  EXPECT_EQ(meta.seed, cfg.scenario.seed);
  EXPECT_DOUBLE_EQ(meta.time, 250.0);
  EXPECT_EQ(meta.events, world.sim().events_executed());
}

TEST(CheckpointFormat, DetectsTamperedBytes) {
  const std::vector<std::uint8_t> image =
      checkpoint_at(small_config(), ProtocolKind::kOpt, 100.0);
  // Flip one byte anywhere in the middle: the trailing digest must trip.
  std::vector<std::uint8_t> bent = image;
  bent[bent.size() / 2] ^= 0x01;
  EXPECT_THROW(read_checkpoint_meta(bent), snapshot::SnapshotError);
}

TEST(CheckpointFormat, DetectsTruncation) {
  const std::vector<std::uint8_t> image =
      checkpoint_at(small_config(), ProtocolKind::kOpt, 100.0);
  std::vector<std::uint8_t> cut(image.begin(),
                                image.begin() + image.size() / 2);
  EXPECT_THROW(read_checkpoint_meta(cut), snapshot::SnapshotError);
  EXPECT_THROW(read_checkpoint_meta({}), snapshot::SnapshotError);
}

TEST(CheckpointFormat, RejectsForeignMagic) {
  std::vector<std::uint8_t> image =
      checkpoint_at(small_config(), ProtocolKind::kOpt, 100.0);
  // Re-stamp the magic *and* recompute the digest, isolating the magic
  // check from the digest check.
  image[0] = 'X';
  std::uint64_t digest;
  {
    snapshot::StateHash h;
    h.update(image.data(), image.size() - 8);
    digest = h.value();
  }
  for (int i = 0; i < 8; ++i)
    image[image.size() - 8 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(digest >> (8 * i));
  EXPECT_THROW(read_checkpoint_meta(image), snapshot::SnapshotError);
}

TEST(CheckpointFormat, RejectsConfigDriftOnResume) {
  const Config cfg = small_config();
  const std::vector<std::uint8_t> image =
      checkpoint_at(cfg, ProtocolKind::kOpt, 100.0);

  Config drifted = cfg;
  drifted.protocol.alpha = 0.9;  // any registered key counts
  EXPECT_THROW(resume_world(drifted, ProtocolKind::kOpt, image),
               snapshot::SnapshotError);
  // Same config under another protocol is a different run too.
  EXPECT_THROW(resume_world(cfg, ProtocolKind::kZbr, image),
               snapshot::SnapshotError);
  // And the unchanged pair resumes fine.
  EXPECT_NO_THROW(resume_world(cfg, ProtocolKind::kOpt, image));
}

TEST(CheckpointFormat, FileRoundTripsThroughDisk) {
  const std::string path = "checkpoint_resume_test_tmp.ckpt";
  const Config cfg = small_config();
  World world(cfg, ProtocolKind::kOpt);
  world.run_until(150.0);
  write_checkpoint(path, world);
  std::vector<std::uint8_t> state;
  const CheckpointMeta meta = read_checkpoint_file(path, &state);
  EXPECT_DOUBLE_EQ(meta.time, 150.0);
  EXPECT_EQ(state, world.serialize_state());
  std::remove(path.c_str());
}

// The acceptance criterion: interrupt a supervised sweep at a checkpoint
// boundary, resume it, and require results bit-identical to the same
// sweep run start-to-finish — at jobs 1 and jobs 4.
class InterruptResume : public ::testing::TestWithParam<int> {};

TEST_P(InterruptResume, BitIdenticalToUninterruptedRun) {
  const int jobs = GetParam();
  const std::string dir =
      "ckpt_resume_jobs" + std::to_string(jobs) + ".tmp";
  std::filesystem::remove_all(dir);

  std::vector<RunSpec> specs(4);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].config = small_config();
    specs[i].config.scenario.seed = 9000 + i;
    specs[i].kind = i % 2 == 0 ? ProtocolKind::kOpt : ProtocolKind::kDirect;
  }
  const std::vector<RunResult> reference = run_specs(specs, 1);

  SupervisorOptions opts;
  opts.checkpoint_dir = dir;
  opts.checkpoint_every_s = 150.0;
  opts.jobs = jobs;
  opts.stop_after_checkpoints = 1;  // deterministic mid-run interruption
  const SweepManifest interrupted = run_specs_supervised(specs, opts);
  EXPECT_EQ(interrupted.completed(), 0);
  EXPECT_EQ(interrupted.interrupted(), 4);

  opts.stop_after_checkpoints = 0;
  opts.resume = true;
  const SweepManifest resumed = run_specs_supervised(specs, opts);
  ASSERT_EQ(resumed.completed(), 4);
  EXPECT_EQ(resumed.quarantined(), 0);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const RunResult& a = reference[i];
    const RunResult& b = resumed.specs[i].result;
    EXPECT_EQ(std::memcmp(&a.delivery_ratio, &b.delivery_ratio,
                          sizeof(double)),
              0)
        << "spec " << i;
    EXPECT_EQ(std::memcmp(&a.mean_power_mw, &b.mean_power_mw, sizeof(double)),
              0)
        << "spec " << i;
    EXPECT_EQ(std::memcmp(&a.mean_delay_s, &b.mean_delay_s, sizeof(double)),
              0)
        << "spec " << i;
    EXPECT_EQ(a.generated, b.generated) << "spec " << i;
    EXPECT_EQ(a.delivered, b.delivered) << "spec " << i;
    EXPECT_EQ(a.collisions, b.collisions) << "spec " << i;
    EXPECT_EQ(a.events_executed, b.events_executed) << "spec " << i;
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Jobs, InterruptResume, ::testing::Values(1, 4));

}  // namespace
}  // namespace dftmsn
