// The injectable I/O environment: schedule-grammar parsing, deterministic
// fault firing (error / short-write / crash-before / crash-after), and
// the atomic+durable write protocol's failure semantics — an injected
// crash leaves the .tmp staging file behind (a real power loss would),
// while an ordinary I/O error cleans it up.
#include "snapshot/io_env.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "snapshot/snapshot_io.hpp"

namespace dftmsn::snapshot {
namespace {

namespace fs = std::filesystem;

/// Every test arms the process-global IoEnv; this guard restores the
/// quiet default (no schedule, throw-mode crashes, parent scope) no
/// matter how the test exits, so suites in the same binary can't leak
/// faults into each other.
struct EnvGuard {
  EnvGuard() { IoEnv::instance().reset(); }
  ~EnvGuard() {
    IoEnv::instance().reset();
    IoEnv::instance().set_crash_exits(false);
    IoEnv::instance().set_scope(IoScope::kParent);
  }
};

struct TempDir {
  explicit TempDir(const std::string& name) : path(name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
  std::string path;
};

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(IoFaultSchedule, ParsesEveryKindOpAndArg) {
  const auto faults = parse_io_fault_schedule(
      "enospc@open#1;eio@fsync#3;short@write#2:bytes=7;"
      "crash@rename#1:scope=worker;crash-after@fsyncdir#4:scope=parent");
  ASSERT_EQ(faults.size(), 5u);
  EXPECT_EQ(faults[0].kind, IoFault::Kind::kEnospc);
  EXPECT_EQ(faults[0].op, IoOp::kOpen);
  EXPECT_EQ(faults[0].nth, 1u);
  EXPECT_EQ(faults[0].scope, IoScope::kAny);
  EXPECT_EQ(faults[1].kind, IoFault::Kind::kEio);
  EXPECT_EQ(faults[1].op, IoOp::kFsync);
  EXPECT_EQ(faults[1].nth, 3u);
  EXPECT_EQ(faults[2].kind, IoFault::Kind::kShortWrite);
  EXPECT_EQ(faults[2].bytes, 7u);
  EXPECT_EQ(faults[3].kind, IoFault::Kind::kCrash);
  EXPECT_EQ(faults[3].op, IoOp::kRename);
  EXPECT_EQ(faults[3].scope, IoScope::kWorker);
  EXPECT_EQ(faults[4].kind, IoFault::Kind::kCrashAfter);
  EXPECT_EQ(faults[4].op, IoOp::kFsyncDir);
  EXPECT_EQ(faults[4].scope, IoScope::kParent);
}

TEST(IoFaultSchedule, EmptySpecIsEmptySchedule) {
  EXPECT_TRUE(parse_io_fault_schedule("").empty());
}

TEST(IoFaultSchedule, RejectionsNameTheOffendingToken) {
  // Each malformed spec must throw, and the message must carry the part
  // the user got wrong (so a typo in $DFTMSN_IO_FAULTS is debuggable).
  const struct {
    const char* spec;
    const char* needle;
  } cases[] = {
      {"boom@write#1", "boom"},          // unknown kind
      {"eio@teleport#1", "teleport"},    // unknown op
      {"eio@write", "eio@write"},        // missing #N
      {"eio@write#0", "#0"},             // occurrence is 1-based
      {"eio@write#x", "x"},              // non-numeric count
      {"eio@write#1:bytes=", "bytes="},  // empty arg value
      {"eio@write#1:frac=3", "frac"},    // unknown arg
      {"eio@write#1:scope=me", "me"},    // unknown scope
      {"short@write#1:bytes=99999999999999999999", "9999"},  // overflow
  };
  for (const auto& c : cases) {
    try {
      parse_io_fault_schedule(c.spec);
      FAIL() << "accepted malformed spec: " << c.spec;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(c.needle), std::string::npos)
          << "spec " << c.spec << " error lacks '" << c.needle
          << "': " << e.what();
    }
  }
}

TEST(IoEnv, ErrorFaultFiresOnTheNthOccurrenceOnly) {
  EnvGuard guard;
  TempDir dir("io_env_nth.tmp");
  IoEnv& io = IoEnv::instance();
  io.set_schedule_spec("enospc@write#3");

  // Occurrences 1 and 2 succeed, 3 fails with ENOSPC in the message and
  // the path named, 4 succeeds again (each fault fires at most once).
  const auto payload = bytes_of("hello");
  io.write_file_atomic_durable(dir.path + "/a", payload);
  io.write_file_atomic_durable(dir.path + "/b", payload);
  try {
    io.write_file_atomic_durable(dir.path + "/c", payload);
    FAIL() << "third write did not fail";
  } catch (const SnapshotError& e) {
    EXPECT_NE(std::string(e.what()).find("ENOSPC"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(dir.path + "/c"), std::string::npos);
  }
  io.write_file_atomic_durable(dir.path + "/d", payload);
  EXPECT_TRUE(fs::exists(dir.path + "/a"));
  EXPECT_FALSE(fs::exists(dir.path + "/c"));
  EXPECT_TRUE(fs::exists(dir.path + "/d"));
}

TEST(IoEnv, FailedAtomicWriteUnlinksItsStagingFile) {
  EnvGuard guard;
  TempDir dir("io_env_unlink.tmp");
  IoEnv& io = IoEnv::instance();
  io.set_schedule_spec("eio@fsync#1");
  EXPECT_THROW(
      io.write_file_atomic_durable(dir.path + "/f", bytes_of("data")),
      SnapshotError);
  // An ordinary error is handled by live code: no target, no leftovers.
  EXPECT_FALSE(fs::exists(dir.path + "/f"));
  EXPECT_FALSE(fs::exists(dir.path + "/f.tmp"));
}

TEST(IoEnv, InjectedCrashLeavesTheStagingFileBehind) {
  EnvGuard guard;
  TempDir dir("io_env_crash.tmp");
  IoEnv& io = IoEnv::instance();
  io.set_schedule_spec("crash@rename#1");
  EXPECT_THROW(
      io.write_file_atomic_durable(dir.path + "/f", bytes_of("data")),
      InjectedCrash);
  // A crash is a power loss: nothing runs after it, so the .tmp survives
  // (that is exactly the leftover --fsck must clean up) and the target
  // was never renamed into place.
  EXPECT_FALSE(fs::exists(dir.path + "/f"));
  EXPECT_TRUE(fs::exists(dir.path + "/f.tmp"));
}

TEST(IoEnv, ShortWriteTearsTheExactPrefix) {
  EnvGuard guard;
  TempDir dir("io_env_short.tmp");
  IoEnv& io = IoEnv::instance();
  io.set_schedule_spec("short@write#1:bytes=3");
  EXPECT_THROW(
      io.write_file_atomic_durable(dir.path + "/f", bytes_of("abcdef")),
      SnapshotError);
  // Short writes model a full disk mid-buffer: only the prefix reaches
  // the staging file... and an ordinary failure cleans the staging file
  // up, so what's observable is that the target never appeared.
  EXPECT_FALSE(fs::exists(dir.path + "/f"));
}

TEST(IoEnv, TornCrashWritesPrefixThenStops) {
  EnvGuard guard;
  TempDir dir("io_env_torn.tmp");
  IoEnv& io = IoEnv::instance();
  io.set_schedule_spec("crash@write#1:bytes=3");
  EXPECT_THROW(
      io.write_file_atomic_durable(dir.path + "/f", bytes_of("abcdef")),
      InjectedCrash);
  // crash+bytes= is the torn-write power loss: the staging file holds
  // exactly the prefix that "reached disk".
  ASSERT_TRUE(fs::exists(dir.path + "/f.tmp"));
  EXPECT_EQ(fs::file_size(dir.path + "/f.tmp"), 3u);
  EXPECT_FALSE(fs::exists(dir.path + "/f"));
}

TEST(IoEnv, CrashAfterFiresOnceTheOpSucceeded) {
  EnvGuard guard;
  TempDir dir("io_env_after.tmp");
  IoEnv& io = IoEnv::instance();
  io.set_schedule_spec("crash-after@rename#1");
  EXPECT_THROW(
      io.write_file_atomic_durable(dir.path + "/f", bytes_of("data")),
      InjectedCrash);
  // The rename completed before the crash: the target exists with the
  // full contents, the staging name is gone — but the parent-dir fsync
  // never ran, which is the window crash-after exists to probe.
  EXPECT_TRUE(fs::exists(dir.path + "/f"));
  EXPECT_FALSE(fs::exists(dir.path + "/f.tmp"));
}

TEST(IoEnv, ScopeFilteringArmsOnlyTheMatchingSide) {
  EnvGuard guard;
  TempDir dir("io_env_scope.tmp");
  IoEnv& io = IoEnv::instance();
  io.set_scope(IoScope::kParent);
  io.set_schedule_spec("eio@write#1:scope=worker");
  // A worker-scoped fault never fires in the parent...
  io.write_file_atomic_durable(dir.path + "/a", bytes_of("x"));
  EXPECT_TRUE(fs::exists(dir.path + "/a"));

  // ...but the same schedule in a worker-scoped process fires at once.
  io.set_schedule_spec("eio@write#1:scope=worker");
  io.set_scope(IoScope::kWorker);
  EXPECT_THROW(io.write_file_atomic_durable(dir.path + "/b", bytes_of("x")),
               SnapshotError);
}

TEST(IoEnv, OpCountersTrackTheProtocol) {
  EnvGuard guard;
  TempDir dir("io_env_count.tmp");
  IoEnv& io = IoEnv::instance();
  io.reset();
  EXPECT_FALSE(io.armed());
  io.write_file_atomic_durable(dir.path + "/f", bytes_of("data"));
  // One atomic write = open + write + fsync + rename + fsyncdir, exactly
  // once each — the invariant every crash-point count in the matrix test
  // keys off.
  EXPECT_EQ(io.op_count(IoOp::kOpen), 1u);
  EXPECT_EQ(io.op_count(IoOp::kWrite), 1u);
  EXPECT_EQ(io.op_count(IoOp::kFsync), 1u);
  EXPECT_EQ(io.op_count(IoOp::kRename), 1u);
  EXPECT_EQ(io.op_count(IoOp::kFsyncDir), 1u);
}

TEST(IoEnv, AtomicWriteRoutesThroughSnapshotIo) {
  EnvGuard guard;
  TempDir dir("io_env_route.tmp");
  // The whole point of the environment: the pre-existing persistence
  // entry point is fault-injectable without its callers changing.
  IoEnv::instance().set_schedule_spec("eio@rename#1");
  EXPECT_THROW(write_file_atomic(dir.path + "/f", bytes_of("data")),
               SnapshotError);
  EXPECT_FALSE(fs::exists(dir.path + "/f"));
}

}  // namespace
}  // namespace dftmsn::snapshot
