#!/usr/bin/env bash
# End-to-end crash-survival check for process-isolated supervision
# (the ISSUE acceptance scenario):
#   1. a segv fault gated to attempt 0 only: every replication's first
#      attempt dies of a real SIGSEGV, the parent retries from the last
#      checkpoint, and the sweep completes with exit 0;
#   2. the same plan ungated: every attempt dies, every replication is
#      quarantined, and the sweep reports exit 5;
#   3. the gated plan WITHOUT process isolation: the signal takes the
#      whole process down (nonzero exit, no manifest completion).
# An abort variant repeats case 1 through SIGABRT.
#
# Exit-code notes: under AddressSanitizer a SIGSEGV becomes a DEADLYSIGNAL
# report and exit code 1 rather than a signal death, so case 3 asserts
# only "nonzero", and cases 1/2 assert the supervisor's documented codes
# (which are identical under ASan — the parent survives either way).
#
# Usage: isolation_crash_e2e.sh <path-to-dftmsn_cli> [workdir]
set -u

CLI="${1:?usage: isolation_crash_e2e.sh <dftmsn_cli> [workdir]}"
WORK="${2:-isolation_crash_e2e.tmp}"

rm -rf "$WORK"
mkdir -p "$WORK"

ARGS=(--protocol OPT --reps 2
      scenario.seed=60309 scenario.num_sensors=12 scenario.num_sinks=2
      scenario.field_m=140 scenario.duration_s=900
      --isolate process --max-retries 1 --checkpoint-every 200)

fail() { echo "FAIL: $*" >&2; exit 1; }

# 1. Gated segv: attempt 0 dies, attempt 1 completes. Exit 0.
"$CLI" "${ARGS[@]}" --faults 'segv@300:attempts=1' \
    --checkpoint-dir "$WORK/gated" > "$WORK/gated.txt" 2>&1
RC=$?
[ "$RC" -eq 0 ] || fail "gated segv sweep exited $RC (want 0)"
grep -q 'completed=2' "$WORK/gated.txt" || fail "gated sweep did not complete"
grep -q 'retried=2' "$WORK/gated.txt" \
  || fail "gated sweep should have retried both replications"

# 1b. Same through SIGABRT.
"$CLI" "${ARGS[@]}" --faults 'abort@300:attempts=1' \
    --checkpoint-dir "$WORK/abort" > "$WORK/abort.txt" 2>&1
RC=$?
[ "$RC" -eq 0 ] || fail "gated abort sweep exited $RC (want 0)"
grep -q 'completed=2' "$WORK/abort.txt" || fail "abort sweep did not complete"

# 2. Ungated segv: every attempt dies, both replications quarantined.
"$CLI" "${ARGS[@]}" --faults 'segv@300' \
    --checkpoint-dir "$WORK/ungated" > "$WORK/ungated.txt" 2>&1
RC=$?
[ "$RC" -eq 5 ] || fail "ungated segv sweep exited $RC (want 5)"
grep -q 'quarantined=2' "$WORK/ungated.txt" \
  || fail "ungated sweep should have quarantined both replications"

# 3. The same gated plan in-process: the first SIGSEGV kills the sweep.
"$CLI" --protocol OPT --reps 2 \
    scenario.seed=60309 scenario.num_sensors=12 scenario.num_sinks=2 \
    scenario.field_m=140 scenario.duration_s=900 \
    --max-retries 1 --checkpoint-every 200 \
    --faults 'segv@300:attempts=1' \
    --checkpoint-dir "$WORK/inproc" > "$WORK/inproc.txt" 2>&1
RC=$?
[ "$RC" -ne 0 ] || fail "in-process segv sweep survived (isolation for free?)"

echo "PASS: gated=0, ungated=5, in-process dies ($RC)"
rm -rf "$WORK"
