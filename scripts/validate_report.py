#!/usr/bin/env python3
"""Validate a dftmsn --report-json document.

Usage:
    validate_report.py REPORT.json [--schema SCHEMA.json]
                       [--compare OTHER.json]

Checks REPORT.json against the (minimal, self-interpreted) schema in
scripts/report_schema.json: required keys, value types, the schema-version
constant and the digest pattern. With --compare, also asserts the two
documents are identical after dropping the "profile" section — the one
part of a report that carries host wall-clock noise and is therefore
excluded from determinism comparisons (see docs/observability.md).

Standard library only; exit 0 on success, 1 with a message on failure.
"""
import argparse
import json
import re
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}


def _fail(path, message):
    raise ValueError(f"{path or '$'}: {message}")


def _check(value, schema, path):
    expected = schema.get("type")
    if expected:
        want = _TYPES[expected]
        # bool is an int subclass in Python; keep the kinds distinct.
        if isinstance(value, bool) and expected in ("number", "integer"):
            _fail(path, f"expected {expected}, got boolean")
        if not isinstance(value, want):
            _fail(path, f"expected {expected}, got {type(value).__name__}")
    if "const" in schema and value != schema["const"]:
        _fail(path, f"expected {schema['const']!r}, got {value!r}")
    if "pattern" in schema and not re.fullmatch(schema["pattern"], value):
        _fail(path, f"{value!r} does not match {schema['pattern']!r}")
    for key in schema.get("required", []):
        if key not in value:
            _fail(path, f"missing required key {key!r}")
    for key, sub in schema.get("properties", {}).items():
        if key in value:
            _check(value[key], sub, f"{path}.{key}")
    if "values" in schema:  # uniform schema for every (other) member
        described = schema.get("properties", {})
        for key, item in value.items():
            if key not in described:
                _check(item, schema["values"], f"{path}.{key}")
    if "items" in schema:
        for i, item in enumerate(value):
            _check(item, schema["items"], f"{path}[{i}]")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report")
    parser.add_argument("--schema", default=None)
    parser.add_argument("--compare", default=None,
                        help="second report that must match (profile "
                             "section excluded)")
    args = parser.parse_args()

    schema_path = args.schema
    if schema_path is None:
        import os
        schema_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                   "report_schema.json")

    with open(args.report) as f:
        report = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)

    try:
        _check(report, schema, "")
    except ValueError as e:
        print(f"{args.report}: schema violation: {e}", file=sys.stderr)
        return 1

    if args.compare:
        with open(args.compare) as f:
            other = json.load(f)
        a = {k: v for k, v in report.items() if k != "profile"}
        b = {k: v for k, v in other.items() if k != "profile"}
        if a != b:
            keys = sorted(k for k in set(a) | set(b) if a.get(k) != b.get(k))
            print(f"{args.report} and {args.compare} differ outside "
                  f"'profile' (keys: {', '.join(keys)})", file=sys.stderr)
            return 1

    print(f"{args.report}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
