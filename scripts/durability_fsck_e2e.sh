#!/usr/bin/env bash
# Durability end-to-end: torn-write crash points and --fsck repair,
# through the real binary (exit-code driven, no test framework).
#
#   usage: durability_fsck_e2e.sh /path/to/dftmsn_cli
#
# Legs:
#   1. clean supervised sweep -> --fsck must report clean (exit 0)
#   2. torn-write crash (crash@write#N:bytes=K tears a record mid-buffer,
#      then the process _exit(9)s) -> --fsck repairs (exit 7 or 0)
#      -> --resume finishes with aggregates identical to the clean run
#   3. deliberate container corruption (byte flip in the record area)
#      -> --fsck repairs -> --resume still completes
#
# Exit codes under test: 0 clean, 7 repaired, 9 injected crash
# (docs/durability.md).
set -u

CLI="${1:?usage: durability_fsck_e2e.sh /path/to/dftmsn_cli}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/dftmsn_durability.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

run_sweep() { # dir extra...
  local dir="$1"; shift
  "$CLI" --protocol DIRECT --reps 2 --jobs 2 \
      --checkpoint-dir "$dir" --checkpoint-every 40 "$@" \
      scenario.num_sensors=6 scenario.num_sinks=1 scenario.duration_s=160
}

fail() { echo "FAIL: $*" >&2; exit 1; }

aggregates() { # file -> the three aggregate lines
  grep -E '^(delivery_ratio|power_mw|delay_s)=' "$1"
}

# --- leg 1: a clean sweep fscks clean --------------------------------------
mkdir -p "$WORK/ref"
run_sweep "$WORK/ref" > "$WORK/ref.out" 2>&1 \
  || fail "reference sweep exited $?"
"$CLI" --fsck "$WORK/ref" > "$WORK/ref.fsck" 2>&1
rc=$?
[ "$rc" -eq 0 ] || { cat "$WORK/ref.fsck" >&2; fail "fsck on a clean dir exited $rc (want 0)"; }
grep -q ': clean$' "$WORK/ref.fsck" || fail "fsck did not say clean"

# --- leg 2: torn-write crash point -> fsck -> resume -----------------------
# bytes=13 tears the record mid-buffer: the torn prefix must be stepped
# over by recovery, not trusted.
mkdir -p "$WORK/torn"
DFTMSN_IO_FAULTS='crash@write#5:bytes=13' \
  run_sweep "$WORK/torn" > "$WORK/torn.out" 2>&1
rc=$?
[ "$rc" -eq 9 ] || { cat "$WORK/torn.out" >&2; fail "scripted crash exited $rc (want 9)"; }

"$CLI" --fsck "$WORK/torn" > "$WORK/torn.fsck" 2>&1
rc=$?
[ "$rc" -eq 7 ] || [ "$rc" -eq 0 ] \
  || { cat "$WORK/torn.fsck" >&2; fail "fsck after torn crash exited $rc (want 0 or 7)"; }

run_sweep "$WORK/torn" --resume > "$WORK/torn.resume" 2>&1 \
  || fail "resume after torn crash exited $?"
diff <(aggregates "$WORK/ref.out") <(aggregates "$WORK/torn.resume") \
  || fail "resumed aggregates differ from the uninterrupted run"

# --- leg 3: corrupt a container record -> fsck repairs -> resume -----------
# Interrupt a sweep at its first checkpoint so live entries stay in the
# container, then flip one byte in the record area (past the 12-byte
# header) and let fsck drop whatever that damaged.
mkdir -p "$WORK/corrupt"
DFTMSN_IO_FAULTS='crash@rename#2' \
  run_sweep "$WORK/corrupt" > "$WORK/corrupt.out" 2>&1
rc=$?
[ "$rc" -eq 9 ] || { cat "$WORK/corrupt.out" >&2; fail "setup crash exited $rc (want 9)"; }
CONTAINER="$WORK/corrupt/checkpoints.dcc"
if [ -s "$CONTAINER" ]; then
  printf '\xa5' | dd of="$CONTAINER" bs=1 seek=40 conv=notrunc status=none \
    || fail "could not flip a container byte"
fi

"$CLI" --fsck "$WORK/corrupt" > "$WORK/corrupt.fsck" 2>&1
rc=$?
[ "$rc" -eq 7 ] || [ "$rc" -eq 0 ] \
  || { cat "$WORK/corrupt.fsck" >&2; fail "fsck on corrupt container exited $rc (want 0 or 7)"; }
# fsck must leave the directory clean: a second pass finds nothing.
"$CLI" --fsck "$WORK/corrupt" > "$WORK/corrupt.fsck2" 2>&1
rc=$?
[ "$rc" -eq 0 ] || { cat "$WORK/corrupt.fsck2" >&2; fail "second fsck pass exited $rc (want 0)"; }

run_sweep "$WORK/corrupt" --resume > "$WORK/corrupt.resume" 2>&1 \
  || fail "resume after corruption exited $?"
diff <(aggregates "$WORK/ref.out") <(aggregates "$WORK/corrupt.resume") \
  || fail "post-corruption aggregates differ from the uninterrupted run"

echo "durability e2e: all legs passed"
