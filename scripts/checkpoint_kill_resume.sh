#!/usr/bin/env bash
# End-to-end crash-safety check: SIGKILL a supervised sweep mid-run, then
# resume it and require the resumed Summary to be bit-identical to an
# uninterrupted run of the same sweep.
#
# SIGKILL (unlike SIGINT/SIGTERM) gives the process no chance to flush a
# final checkpoint, so this exercises the worst case: recovery must work
# from whatever periodic checkpoints and incremental manifest rewrites
# made it to disk before the kill.
#
# Usage: checkpoint_kill_resume.sh <path-to-dftmsn_cli> [workdir]
set -u

CLI="${1:?usage: checkpoint_kill_resume.sh <dftmsn_cli> [workdir]}"
WORK="${2:-kill_resume_e2e.tmp}"

rm -rf "$WORK"
mkdir -p "$WORK"

ARGS=(--protocol OPT --reps 4 --jobs 2
      scenario.seed=31337 scenario.num_sensors=15 scenario.num_sinks=2
      scenario.field_m=150 scenario.duration_s=4000)

fail() { echo "FAIL: $*" >&2; exit 1; }

# Reference: the same sweep, unsupervised and uninterrupted.
"$CLI" "${ARGS[@]}" > "$WORK/reference.txt" \
  || fail "reference run exited $?"

# Victim: supervised with frequent checkpoints, SIGKILLed mid-run. Wait
# until at least one checkpoint exists so the kill lands mid-sweep, not
# before the first slice.
"$CLI" "${ARGS[@]}" --checkpoint-dir "$WORK/ckpt" --checkpoint-every 200 \
  > "$WORK/victim.txt" 2>&1 &
PID=$!
for _ in $(seq 1 200); do
  if [ -s "$WORK/ckpt/checkpoints.dcc" ]; then break; fi
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.05
done
if kill -0 "$PID" 2>/dev/null; then
  kill -KILL "$PID"
  wait "$PID" 2>/dev/null
  KILLED=1
else
  # The sweep finished before we could kill it (very fast machine);
  # the resume below then just reloads the manifest, which still
  # exercises the bit-identity check.
  wait "$PID"
  KILLED=0
fi
[ -f "$WORK/ckpt/manifest.txt" ] || fail "no manifest survived the kill"

# Resume and compare. Filter to the per-replication result lines and the
# aggregate block; timing/progress chatter may legitimately differ.
"$CLI" "${ARGS[@]}" --checkpoint-dir "$WORK/ckpt" --resume \
  > "$WORK/resumed.txt" || fail "resume exited $?"

grep -v -e '^rep ' -e '^manifest:' -e '^over ' "$WORK/resumed.txt" \
  > "$WORK/resumed_summary.txt"
if ! diff -u "$WORK/reference.txt" "$WORK/resumed_summary.txt"; then
  fail "resumed summary differs from uninterrupted run"
fi

# Part 2: kill a WORKER, not the parent. Under --isolate process each
# replication attempt is a spawned child; SIGKILLing one mid-run must be
# absorbed by the supervising parent (retry from the last checkpoint),
# and the finished sweep must still match the uninterrupted reference.
"$CLI" "${ARGS[@]}" --isolate process --checkpoint-dir "$WORK/iso_ckpt" \
  --checkpoint-every 200 > "$WORK/iso.txt" 2>&1 &
PID=$!
WKILLED=0
for _ in $(seq 1 400); do
  # Workers are children of the supervising CLI running `--worker`.
  WORKER=$(pgrep -P "$PID" -f -- "--worker" 2>/dev/null | head -n1)
  if [ -n "${WORKER:-}" ]; then
    kill -KILL "$WORKER" 2>/dev/null && WKILLED=1
    break
  fi
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.05
done
wait "$PID"
RC=$?
[ "$RC" -eq 0 ] || fail "isolated sweep exited $RC after worker kill"

grep -v -e '^rep ' -e '^manifest:' -e '^over ' "$WORK/iso.txt" \
  > "$WORK/iso_summary.txt"
if ! diff -u "$WORK/reference.txt" "$WORK/iso_summary.txt"; then
  fail "worker-killed sweep differs from uninterrupted run"
fi

# Part 3: the same SIGKILL/resume drill with trace-driven mobility (a
# scenario-library world). The checkpoint stores only each node's replay
# cursor; the resume re-materializes the trace file (deterministic, so
# byte-identical) and must still finish bit-identically.
SARGS=(--scenario convoy --scenario-dir "$WORK" --protocol OPT
       --reps 4 --jobs 2 scenario.duration_s=1500)

"$CLI" "${SARGS[@]}" > "$WORK/trace_reference.txt" \
  || fail "trace reference run exited $?"

"$CLI" "${SARGS[@]}" --checkpoint-dir "$WORK/trace_ckpt" \
  --checkpoint-every 200 > "$WORK/trace_victim.txt" 2>&1 &
PID=$!
for _ in $(seq 1 200); do
  if [ -s "$WORK/trace_ckpt/checkpoints.dcc" ]; then break; fi
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.05
done
TKILLED=0
if kill -0 "$PID" 2>/dev/null; then
  kill -KILL "$PID"
  wait "$PID" 2>/dev/null
  TKILLED=1
else
  wait "$PID"
fi
[ -f "$WORK/trace_ckpt/manifest.txt" ] || fail "no trace manifest survived"

"$CLI" "${SARGS[@]}" --checkpoint-dir "$WORK/trace_ckpt" --resume \
  > "$WORK/trace_resumed.txt" || fail "trace resume exited $?"

grep -v -e '^rep ' -e '^manifest:' -e '^over ' "$WORK/trace_resumed.txt" \
  > "$WORK/trace_resumed_summary.txt"
if ! diff -u "$WORK/trace_reference.txt" "$WORK/trace_resumed_summary.txt"; then
  fail "resumed trace-mobility summary differs from uninterrupted run"
fi

echo "OK: killed=$KILLED worker_killed=$WKILLED trace_killed=$TKILLED," \
     "resumed + worker-killed sweeps bit-identical to reference"
rm -rf "$WORK"
