#!/usr/bin/env bash
# End-to-end report determinism check: the same replicated sweep run at
# --jobs 1 and --jobs 4 must produce byte-identical --report-json
# documents (no "profile" section is emitted without --profile, so plain
# cmp is the right oracle). When python3 is available the report is also
# validated against scripts/report_schema.json, and a --profile run is
# compared modulo its (host-noise) profile section.
#
# Usage: report_identity.sh <path-to-dftmsn_cli> [workdir]
set -u

CLI="${1:?usage: report_identity.sh <dftmsn_cli> [workdir]}"
WORK="${2:-report_identity.tmp}"
HERE="$(cd "$(dirname "$0")" && pwd)"

rm -rf "$WORK"
mkdir -p "$WORK"

ARGS=(--protocol OPT --reps 4
      scenario.seed=4242 scenario.num_sensors=15 scenario.num_sinks=2
      scenario.field_m=150 scenario.duration_s=1500)

fail() { echo "FAIL: $*" >&2; exit 1; }

"$CLI" "${ARGS[@]}" --jobs 1 --report-json "$WORK/serial.json" \
  > /dev/null || fail "serial run exited $?"
"$CLI" "${ARGS[@]}" --jobs 4 --report-json "$WORK/parallel.json" \
  > /dev/null || fail "parallel run exited $?"

cmp "$WORK/serial.json" "$WORK/parallel.json" \
  || fail "--jobs 1 and --jobs 4 reports differ"

if command -v python3 > /dev/null 2>&1; then
  python3 "$HERE/validate_report.py" "$WORK/serial.json" \
    || fail "schema validation failed"
  # --profile is itself a config key (it changes the digest), so the
  # modulo-profile comparison is between two *profiled* runs: everything
  # except the wall-clock timings must still match across --jobs.
  "$CLI" "${ARGS[@]}" --jobs 1 --profile \
      --report-json "$WORK/profiled1.json" > /dev/null \
    || fail "profiled serial run exited $?"
  "$CLI" "${ARGS[@]}" --jobs 4 --profile \
      --report-json "$WORK/profiled4.json" > /dev/null \
    || fail "profiled parallel run exited $?"
  python3 "$HERE/validate_report.py" "$WORK/profiled1.json" \
      --compare "$WORK/profiled4.json" \
    || fail "profiled reports differ outside their profile sections"
fi

echo "PASS: reports byte-identical across --jobs"
