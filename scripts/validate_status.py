#!/usr/bin/env python3
"""Validate a dftmsn status.json document (and optionally a trace file).

Usage:
    validate_status.py STATUS.json [--schema SCHEMA.json]
                       [--expect-terminal] [--expect-healthy {0,1}]
                       [--trace TRACE.jsonl]

Checks STATUS.json against the (minimal, self-interpreted) schema in
scripts/status_schema.json — the same schema dialect validate_report.py
speaks: required keys, value types, const and pattern constraints, plus
uniform member/item schemas. Cross-field invariants that a schema can't
express are checked in code: phase counts sum to specs_total, the specs
array length matches, progress stays in [0, 1].

--expect-terminal additionally requires every spec to have reached a
terminal phase (done / quarantined / interrupted). --expect-healthy pins
the health bit. --trace checks a lifecycle trace: Chrome trace-event
JSON lines (opening "[", one object per line with a trailing comma) with
the required ph/name/pid/tid/ts members (docs/observability.md).

Standard library only; exit 0 on success, 1 with a message on failure.
"""
import argparse
import json
import os
import re
import sys

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}

_TERMINAL = {"done", "quarantined", "interrupted"}


def _fail(path, message):
    raise ValueError(f"{path or '$'}: {message}")


def _check(value, schema, path):
    expected = schema.get("type")
    if expected:
        want = _TYPES[expected]
        # bool is an int subclass in Python; keep the kinds distinct.
        if isinstance(value, bool) and expected in ("number", "integer"):
            _fail(path, f"expected {expected}, got boolean")
        if not isinstance(value, want):
            _fail(path, f"expected {expected}, got {type(value).__name__}")
    if "const" in schema and value != schema["const"]:
        _fail(path, f"expected {schema['const']!r}, got {value!r}")
    if "pattern" in schema and not re.fullmatch(schema["pattern"], value):
        _fail(path, f"{value!r} does not match {schema['pattern']!r}")
    for key in schema.get("required", []):
        if key not in value:
            _fail(path, f"missing required key {key!r}")
    for key, sub in schema.get("properties", {}).items():
        if key in value:
            _check(value[key], sub, f"{path}.{key}")
    if "values" in schema:  # uniform schema for every (other) member
        described = schema.get("properties", {})
        for key, item in value.items():
            if key not in described:
                _check(item, schema["values"], f"{path}.{key}")
    if "items" in schema:
        for i, item in enumerate(value):
            _check(item, schema["items"], f"{path}[{i}]")


def _check_invariants(doc):
    total = doc["specs_total"]
    if sum(doc["phases"].values()) != total:
        _fail("$.phases", f"counts sum to {sum(doc['phases'].values())}, "
                          f"specs_total is {total}")
    if len(doc["specs"]) != total:
        _fail("$.specs", f"{len(doc['specs'])} rows for {total} specs")
    if not 0.0 <= doc["progress"] <= 1.0:
        _fail("$.progress", f"{doc['progress']} outside [0, 1]")
    for i, spec in enumerate(doc["specs"]):
        if spec["index"] != i:
            _fail(f"$.specs[{i}].index", f"expected {i}, got {spec['index']}")


def _check_trace(path):
    with open(path) as f:
        lines = f.read().splitlines()
    if not lines or lines[0] != "[":
        _fail("trace", 'first line must be "["')
    if len(lines) < 2:
        _fail("trace", "no events recorded")
    for n, line in enumerate(lines[1:], start=2):
        if not line.endswith(","):
            _fail(f"trace:{n}", "event line must end with a comma")
        try:
            ev = json.loads(line[:-1])
        except json.JSONDecodeError as e:
            _fail(f"trace:{n}", f"not JSON: {e}")
        for key in ("name", "ph", "pid", "tid", "ts"):
            if key not in ev:
                _fail(f"trace:{n}", f"missing required key {key!r}")
        if ev["ph"] not in ("B", "E", "i"):
            _fail(f"trace:{n}", f"unexpected phase {ev['ph']!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("status")
    parser.add_argument("--schema", default=None)
    parser.add_argument("--expect-terminal", action="store_true",
                        help="require every spec to be done / quarantined "
                             "/ interrupted")
    parser.add_argument("--expect-healthy", type=int, choices=(0, 1),
                        default=None, help="require the health bit")
    parser.add_argument("--trace", default=None,
                        help="lifecycle trace file to check as well")
    args = parser.parse_args()

    schema_path = args.schema
    if schema_path is None:
        schema_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                   "status_schema.json")

    with open(args.status) as f:
        doc = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)

    try:
        _check(doc, schema, "")
        _check_invariants(doc)
        if args.expect_terminal:
            for i, spec in enumerate(doc["specs"]):
                if spec["phase"] not in _TERMINAL:
                    _fail(f"$.specs[{i}]",
                          f"phase {spec['phase']!r} is not terminal")
        if args.expect_healthy is not None:
            if doc["healthy"] != bool(args.expect_healthy):
                _fail("$.healthy", f"expected {bool(args.expect_healthy)}, "
                                   f"got {doc['healthy']}")
        if args.trace:
            _check_trace(args.trace)
    except ValueError as e:
        print(f"{args.status}: validation failure: {e}", file=sys.stderr)
        return 1

    print(f"{args.status}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
