#!/usr/bin/env bash
# End-to-end isolation-mode determinism check: the same supervised sweep
# run {in-process, process-isolated} x {--jobs 1, --jobs 4} must produce
# byte-identical manifests and byte-identical --report-json documents.
# --report-json turns telemetry on, so the manifests carry serialized
# instrument registries and the comparison also proves the registry
# crossed the worker process boundary bit-exactly.
#
# Usage: isolation_identity.sh <path-to-dftmsn_cli> [workdir]
set -u

CLI="${1:?usage: isolation_identity.sh <dftmsn_cli> [workdir]}"
WORK="${2:-isolation_identity.tmp}"

rm -rf "$WORK"
mkdir -p "$WORK"

ARGS=(--protocol OPT --reps 4
      scenario.seed=5150 scenario.num_sensors=15 scenario.num_sinks=2
      scenario.field_m=150 scenario.duration_s=1500
      --checkpoint-every 300)

fail() { echo "FAIL: $*" >&2; exit 1; }

run_variant() { # name isolate jobs
  local name="$1" isolate="$2" jobs="$3"
  "$CLI" "${ARGS[@]}" --isolate "$isolate" --jobs "$jobs" \
      --checkpoint-dir "$WORK/$name" --report-json "$WORK/$name.json" \
      > "$WORK/$name.txt" \
    || fail "$name run exited $?"
  grep -q 'retries=0' "$WORK/$name.txt" || fail "$name had unexpected retries"
}

run_variant in1 in-process 1
run_variant in4 in-process 4
run_variant pr1 process 1
run_variant pr4 process 4

for v in in4 pr1 pr4; do
  cmp "$WORK/in1/manifest.txt" "$WORK/$v/manifest.txt" \
    || fail "manifest of $v differs from in-process --jobs 1"
  cmp "$WORK/in1.json" "$WORK/$v.json" \
    || fail "report of $v differs from in-process --jobs 1"
done

# The manifests must actually carry telemetry, or the equality above
# proves less than it claims.
grep -q '^registry ' "$WORK/pr4/manifest.txt" \
  || fail "process-isolated manifest has no registry lines"

echo "PASS: manifests + reports byte-identical across isolation modes and jobs"
rm -rf "$WORK"
