#!/usr/bin/env bash
# End-to-end check of the live observability plane:
#   A. a sweep whose first attempts hang (watchdog-recovered) with the
#      status file, HTTP listener and lifecycle trace all on — /status
#      and /metrics are fetched MID-RUN, the sweep still exits 0, the
#      final status.json passes scripts/validate_status.py with every
#      spec terminal and healthy=1, the trace is well-formed, and the
#      reader mode (--status DIR) renders it;
#   B. the same plan ungated — every attempt hangs, the watchdog trips
#      until quarantine, /healthz is observed flipping to 503 while the
#      sweep is still running, and the sweep exits 5 with a final
#      unhealthy terminal document.
#
# The listener binds an ephemeral port (--status-port 0) and announces
# it on stdout ("status: listening on 127.0.0.1:PORT"); the script
# discovers the port by polling that line, the same way a harness would.
#
# Usage: status_e2e.sh <path-to-dftmsn_cli> [workdir]
set -u

CLI="${1:?usage: status_e2e.sh <dftmsn_cli> [workdir]}"
WORK="${2:-status_e2e.tmp}"
case "$WORK" in /*) ;; *) WORK="$PWD/$WORK" ;; esac
case "$CLI" in /*) ;; *) CLI="$PWD/$CLI" ;; esac
SCRIPTS="$(cd "$(dirname "$0")" && pwd)"

rm -rf "$WORK"
mkdir -p "$WORK"

fail() { echo "FAIL: $*" >&2; exit 1; }

# Poll a sweep's log for the ephemeral-port announce line.
discover_port() {
  local log="$1" port="" i
  for i in $(seq 1 100); do
    port=$(grep -oE 'listening on 127\.0\.0\.1:[0-9]+' "$log" 2>/dev/null \
           | head -n1 | grep -oE '[0-9]+$' || true)
    [ -n "$port" ] && { echo "$port"; return 0; }
    sleep 0.1
  done
  return 1
}

ARGS=(--protocol OPT --reps 2
      scenario.seed=60311 scenario.num_sensors=12 scenario.num_sinks=2
      scenario.field_m=140 scenario.duration_s=900
      --max-retries 1 --checkpoint-every 200 --watchdog-secs 2
      --status-every 0.2 --status-port 0)

# --- A. Gated hangs: watchdog aborts attempt 0, the retry completes. ---
"$CLI" "${ARGS[@]}" --faults 'hang@500:attempts=1' \
    --checkpoint-dir "$WORK/a" --trace-out "$WORK/a/trace.jsonl" \
    > "$WORK/a.txt" 2>&1 &
PID=$!
PORT=$(discover_port "$WORK/a.txt") || fail "no announce line in a.txt"

# Mid-run fetches: the sweep is still hanging/retrying while these land.
curl -fsS "http://127.0.0.1:$PORT/status" > "$WORK/a_status_live.json" \
  || fail "GET /status failed mid-run"
grep -q 'dftmsn-status-v1' "$WORK/a_status_live.json" \
  || fail "/status did not serve the status schema"
curl -fsS "http://127.0.0.1:$PORT/metrics" > "$WORK/a_metrics.txt" \
  || fail "GET /metrics failed mid-run"
grep -q '^dftmsn_up 1' "$WORK/a_metrics.txt" \
  || fail "/metrics did not expose dftmsn_up"
grep -q '^# TYPE dftmsn_events_executed_total counter' "$WORK/a_metrics.txt" \
  || fail "/metrics lacks Prometheus TYPE headers"
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$PORT/nope")
[ "$CODE" = "404" ] || fail "unknown path served $CODE (want 404)"

wait "$PID"; RC=$?
[ "$RC" -eq 0 ] || { cat "$WORK/a.txt" >&2; fail "gated sweep exited $RC"; }
grep -q 'completed=2' "$WORK/a.txt" || fail "gated sweep did not complete"
grep -q 'retried=2' "$WORK/a.txt" || fail "gated sweep should have retried"

python3 "$SCRIPTS/validate_status.py" "$WORK/a/status.json" \
    --expect-terminal --expect-healthy 1 --trace "$WORK/a/trace.jsonl" \
  || fail "terminal status.json / trace validation failed"

# Reader mode renders the terminal document and exits 0.
"$CLI" --status "$WORK/a" > "$WORK/a_reader.txt" \
  || fail "--status reader exited nonzero"
grep -q 'done' "$WORK/a_reader.txt" || fail "reader table shows no done spec"

# --- B. Ungated hangs: quarantine; /healthz flips to 503 mid-run. ---
"$CLI" "${ARGS[@]}" --faults 'hang@500' \
    --checkpoint-dir "$WORK/b" > "$WORK/b.txt" 2>&1 &
PID=$!
PORT=$(discover_port "$WORK/b.txt") || fail "no announce line in b.txt"

SAW_503=0
for i in $(seq 1 200); do
  CODE=$(curl -s -o /dev/null -w '%{http_code}' \
         "http://127.0.0.1:$PORT/healthz" || true)
  if [ "$CODE" = "503" ]; then SAW_503=1; break; fi
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.1
done
[ "$SAW_503" -eq 1 ] || fail "never observed /healthz 503 during quarantine"

wait "$PID"; RC=$?
[ "$RC" -eq 5 ] || { cat "$WORK/b.txt" >&2; fail "ungated sweep exited $RC (want 5)"; }
grep -q 'quarantined=2' "$WORK/b.txt" || fail "expected both reps quarantined"

python3 "$SCRIPTS/validate_status.py" "$WORK/b/status.json" \
    --expect-terminal --expect-healthy 0 \
  || fail "unhealthy terminal status.json validation failed"
grep -q 'attempt' "$WORK/b/status.json" \
  || fail "quarantine detail lacks the attempt stamp"

echo "PASS: live /status + /metrics, healthz 503 under quarantine, exit codes 0/5"
rm -rf "$WORK"
