#!/usr/bin/env python3
"""Compile text motion traces to the dftmsn binary trace format (and back).

Usage:
    trace_compiler.py compile   TRACE.txt TRACE.trc
    trace_compiler.py decompile TRACE.trc TRACE.txt

Text format: one waypoint sample per line, '#' starts a comment:

    # t_seconds  node_id  x_m  y_m
    0.0    0   10.0  20.0
    30.5   0   45.0  20.0
    0.0    1   99.0   1.5

Node ids must form a contiguous range 0..N-1. Samples may appear in any
line order; the compiler sorts each node's samples by time and rejects
duplicate timestamps, non-finite values, and missing nodes — naming the
offending node and sample. The binary layout (little-endian, trailing
FNV-1a digest; authoritative definition in src/mobility/motion_trace.hpp):

    magic "DFTMSNTR" | u32 version=1 | u32 node_count
    per node: u64 sample_count, then sample_count x (f64 t, f64 x, f64 y)
    u64 FNV-1a digest of every preceding byte

Standard library only; exit 0 on success, 1 with a message on failure.
"""
import math
import struct
import sys

MAGIC = b"DFTMSNTR"
VERSION = 1
FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
MASK64 = (1 << 64) - 1


def fnv1a(data):
    h = FNV_OFFSET
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


def fail(message):
    print(f"trace_compiler: {message}", file=sys.stderr)
    sys.exit(1)


def parse_text(path):
    tracks = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 4:
                fail(f"{path}:{lineno}: expected 't node x y', got {line!r}")
            try:
                t, x, y = float(parts[0]), float(parts[2]), float(parts[3])
                node = int(parts[1])
            except ValueError:
                fail(f"{path}:{lineno}: malformed number in {line!r}")
            if node < 0:
                fail(f"{path}:{lineno}: negative node id {node}")
            if not all(math.isfinite(v) for v in (t, x, y)):
                fail(f"{path}:{lineno}: non-finite value in {line!r}")
            tracks.setdefault(node, []).append((t, x, y))
    if not tracks:
        fail(f"{path}: no samples")
    n = max(tracks) + 1
    for node in range(n):
        if node not in tracks:
            fail(f"{path}: node {node} has no samples "
                 f"(ids must be contiguous 0..{n - 1})")
    ordered = []
    for node in range(n):
        samples = sorted(tracks[node], key=lambda s: s[0])
        for i in range(1, len(samples)):
            if samples[i][0] <= samples[i - 1][0]:
                fail(f"{path}: node {node} sample {i}: duplicate timestamp "
                     f"t={samples[i][0]}")
        ordered.append(samples)
    return ordered


def compile_trace(src, dst):
    tracks = parse_text(src)
    out = bytearray(MAGIC)
    out += struct.pack("<II", VERSION, len(tracks))
    for samples in tracks:
        out += struct.pack("<Q", len(samples))
        for t, x, y in samples:
            out += struct.pack("<ddd", t, x, y)
    out += struct.pack("<Q", fnv1a(out))
    with open(dst, "wb") as f:
        f.write(out)
    total = sum(len(s) for s in tracks)
    print(f"{dst}: {len(tracks)} nodes, {total} samples, {len(out)} bytes")


def decompile_trace(src, dst):
    with open(src, "rb") as f:
        data = f.read()
    if len(data) < len(MAGIC) + 8 + 8:
        fail(f"{src}: truncated file")
    stored = struct.unpack("<Q", data[-8:])[0]
    if fnv1a(data[:-8]) != stored:
        fail(f"{src}: digest mismatch (torn or corrupt file)")
    if data[: len(MAGIC)] != MAGIC:
        fail(f"{src}: bad magic")
    pos = len(MAGIC)
    version, nodes = struct.unpack_from("<II", data, pos)
    pos += 8
    if version != VERSION:
        fail(f"{src}: unsupported format version {version}")
    lines = ["# t_seconds  node_id  x_m  y_m"]
    for node in range(nodes):
        (count,) = struct.unpack_from("<Q", data, pos)
        pos += 8
        for _ in range(count):
            t, x, y = struct.unpack_from("<ddd", data, pos)
            pos += 24
            lines.append(f"{t!r} {node} {x!r} {y!r}")
    with open(dst, "w") as f:
        f.write("\n".join(lines) + "\n")
    print(f"{dst}: {nodes} nodes, {len(lines) - 1} samples")


def main():
    if len(sys.argv) != 4 or sys.argv[1] not in ("compile", "decompile"):
        print(__doc__, file=sys.stderr)
        return 1
    if sys.argv[1] == "compile":
        compile_trace(sys.argv[2], sys.argv[3])
    else:
        decompile_trace(sys.argv[2], sys.argv[3])
    return 0


if __name__ == "__main__":
    sys.exit(main())
