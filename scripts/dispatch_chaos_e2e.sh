#!/usr/bin/env bash
# Dispatch chaos end-to-end: a sweep served through the lease-based work
# queue (--dispatch-port, docs/distributed_sweeps.md) must survive
# workers being SIGKILLed mid-batch, SIGSTOPped past their lease
# deadline, and severed mid-connection — and still produce a manifest
# and a --report-json byte-identical to clean in-process runs at
# --jobs 1 and --jobs 4. That is the whole robustness contract in one
# assertion: transport chaos may cost wall time, never bytes.
#
# Usage: dispatch_chaos_e2e.sh <path-to-dftmsn_cli> [workdir]
set -u

CLI="${1:?usage: dispatch_chaos_e2e.sh <dftmsn_cli> [workdir]}"
WORK="${2:-dispatch_chaos.tmp}"

rm -rf "$WORK"
mkdir -p "$WORK"

# Each replication takes a few hundred wall-ms, so the SIGKILL/SIGSTOP
# below land while every worker is genuinely mid-spec.
ARGS=(--protocol OPT --reps 8
      scenario.seed=7001 scenario.num_sensors=25 scenario.num_sinks=2
      scenario.field_m=200 scenario.duration_s=40000)

fail() { echo "FAIL: $*" >&2; exit 1; }

# --- references: clean in-process runs at jobs 1 and 4 ------------------
"$CLI" "${ARGS[@]}" --jobs 1 --checkpoint-dir "$WORK/ref1" \
    --report-json "$WORK/ref1.json" > "$WORK/ref1.txt" \
  || fail "reference --jobs 1 run exited $?"
"$CLI" "${ARGS[@]}" --jobs 4 --checkpoint-dir "$WORK/ref4" \
    --report-json "$WORK/ref4.json" > "$WORK/ref4.txt" \
  || fail "reference --jobs 4 run exited $?"
cmp "$WORK/ref1/manifest.txt" "$WORK/ref4/manifest.txt" \
  || fail "reference manifests differ between jobs 1 and 4"
cmp "$WORK/ref1.json" "$WORK/ref4.json" \
  || fail "reference reports differ between jobs 1 and 4"

# Starts a dispatching parent named $1 (extra flags in $2...) and waits
# for its announced port; DISPATCH_PID and PORT come back in globals.
start_dispatcher() {
  local name="$1"; shift
  "$CLI" "${ARGS[@]}" --dispatch-port 0 "$@" \
      --checkpoint-dir "$WORK/$name" --report-json "$WORK/$name.json" \
      > "$WORK/$name.txt" 2>&1 &
  DISPATCH_PID=$!
  PORT=""
  for _ in $(seq 1 200); do
    PORT=$(sed -n 's/^dispatch: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
           "$WORK/$name.txt" 2>/dev/null | head -n1)
    [ -n "$PORT" ] && return 0
    kill -0 "$DISPATCH_PID" 2>/dev/null || fail "$name parent died early: $(cat "$WORK/$name.txt")"
    sleep 0.05
  done
  fail "$name never announced its dispatch port"
}

# --- clean dispatched run: two healthy workers --------------------------
start_dispatcher clean
"$CLI" --connect "127.0.0.1:$PORT" > "$WORK/clean.w1.txt" 2>&1 &
W1=$!
"$CLI" --connect "127.0.0.1:$PORT" > "$WORK/clean.w2.txt" 2>&1 &
W2=$!
wait "$DISPATCH_PID" || fail "clean dispatched parent exited $?"
wait "$W1" || fail "clean worker 1 exited $?"
wait "$W2" || fail "clean worker 2 exited $?"
cmp "$WORK/ref1/manifest.txt" "$WORK/clean/manifest.txt" \
  || fail "clean dispatched manifest differs from in-process reference"
cmp "$WORK/ref1.json" "$WORK/clean.json" \
  || fail "clean dispatched report differs from in-process reference"

# --- chaos run: kill, stall, sever — plus two honest workers ------------
# Short leases so the SIGSTOPped worker's frozen heartbeat counter lets
# its lease lapse within the test budget. The status plane rides along
# so the final status.json proves the lease machinery actually engaged.
start_dispatcher chaos --lease-secs 1 --batch-size 2 --status-every 0.2

"$CLI" --connect "127.0.0.1:$PORT" > "$WORK/chaos.a.txt" 2>&1 &
WA=$!   # honest
"$CLI" --connect "127.0.0.1:$PORT" > "$WORK/chaos.b.txt" 2>&1 &
WB=$!   # SIGKILLed mid-batch
"$CLI" --connect "127.0.0.1:$PORT" > "$WORK/chaos.c.txt" 2>&1 &
WC=$!   # SIGSTOPped past its lease deadline, SIGCONTed near the end
DFTMSN_DISPATCH_DROP_AFTER=1 \
  "$CLI" --connect "127.0.0.1:$PORT" > "$WORK/chaos.d.txt" 2>&1 &
WD=$!   # severs its own connection after one result, no goodbye
"$CLI" --connect "127.0.0.1:$PORT" > "$WORK/chaos.e.txt" 2>&1 &
WE=$!   # honest

sleep 0.3
kill -KILL "$WB" 2>/dev/null
kill -STOP "$WC" 2>/dev/null

wait "$DISPATCH_PID" || fail "chaos dispatched parent exited $?"
wait "$WA" || fail "chaos honest worker A exited $?"
wait "$WE" || fail "chaos honest worker E exited $?"
wait "$WD" || fail "chaos severing worker D exited $?"
wait "$WB" 2>/dev/null  # killed: nonzero by design
# A resurrected worker may publish results for specs that were long
# re-leased and completed; the dispatcher must discard them by spec id.
kill -CONT "$WC" 2>/dev/null
wait "$WC" 2>/dev/null

cmp "$WORK/ref1/manifest.txt" "$WORK/chaos/manifest.txt" \
  || fail "chaos manifest differs from clean in-process reference"
cmp "$WORK/ref1.json" "$WORK/chaos.json" \
  || fail "chaos report differs from clean in-process reference"
grep -q 'retries=0' "$WORK/chaos.txt" \
  || fail "chaos run consumed sim retries for transport losses"
grep -q 'completed=8' "$WORK/chaos.txt" \
  || fail "chaos run did not complete every replication"

# The chaos must have engaged the lease machinery, or the byte identity
# above proves less than it claims: at least one requeue (the SIGKILLed
# and severed workers both lose leases) in the final status document.
grep -q '"requeues": 0' "$WORK/chaos/status.json" \
  && fail "chaos run never requeued a batch — the chaos did not bite"
grep -q '"dispatch"' "$WORK/chaos/status.json" \
  || fail "chaos status.json carries no dispatch section"

echo "PASS: dispatched sweeps byte-identical to in-process under chaos"
rm -rf "$WORK"
