#!/usr/bin/env python3
"""Plot the reproduced Fig. 2(a/b/c) from bench output.

Usage:
    build/bench/fig2_sinks          # writes fig2_sinks.csv
    python3 scripts/plot_fig2.py fig2_sinks.csv [out_prefix]

Produces <out_prefix>_{ratio,power,delay}.png mirroring the paper's three
panels. Requires matplotlib.
"""
import csv
import sys

PROTOCOL_NAMES = {0: "OPT", 1: "NOOPT", 2: "NOSLEEP", 3: "ZBR",
                  4: "DIRECT", 5: "EPIDEMIC"}

PANELS = [
    ("delivery_ratio", "Delivery ratio", "fig2a", 100.0),
    ("power_mw", "Average nodal power (mW)", "fig2b", 1.0),
    ("delay_s", "Average delivery delay (s)", "fig2c", 1.0),
]


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    path = sys.argv[1]
    prefix = sys.argv[2] if len(sys.argv) > 2 else "fig2"

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib is required: pip install matplotlib")
        return 1

    series = {}  # protocol -> {column -> [(sinks, value)]}
    with open(path, newline="") as f:
        for row in csv.DictReader(f):
            proto = PROTOCOL_NAMES.get(int(float(row["protocol"])),
                                       row["protocol"])
            for column, _, _, scale in PANELS:
                series.setdefault(proto, {}).setdefault(column, []).append(
                    (float(row["sinks"]), float(row[column]) * scale))

    for column, ylabel, name, _ in PANELS:
        fig, ax = plt.subplots(figsize=(5, 4))
        for proto, cols in sorted(series.items()):
            points = sorted(cols[column])
            ax.plot([p[0] for p in points], [p[1] for p in points],
                    marker="o", label=proto)
        ax.set_xlabel("Number of sinks")
        ax.set_ylabel(ylabel)
        if column == "power_mw":
            ax.set_yscale("log")
        ax.legend()
        ax.grid(True, alpha=0.3)
        fig.tight_layout()
        out = f"{prefix}_{name}.png"
        fig.savefig(out, dpi=150)
        print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
